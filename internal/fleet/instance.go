package fleet

import (
	"fmt"
	"math"
	"strings"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/features"
	"agingpred/internal/injector"
	"agingpred/internal/monitor"
	"agingpred/internal/rng"
)

// Class buckets the heterogeneous instance population by the kind of aging
// fault it carries; the fleet report breaks prediction accuracy and
// crash/rejuvenation counts down per class.
type Class int

const (
	// ClassHealthy instances carry no aging fault at all.
	ClassHealthy Class = iota
	// ClassMemLeak instances leak memory through the request-coupled search
	// servlet fault (the paper's deterministic-aging scenario).
	ClassMemLeak
	// ClassThreadLeak instances leak threads on the time-coupled fault.
	ClassThreadLeak
	// ClassConnLeak instances leak database connections.
	ClassConnLeak
	// ClassCombined instances age through memory and threads at once
	// (experiment 4.4's two-resource scenario).
	ClassCombined

	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassHealthy:
		return "healthy"
	case ClassMemLeak:
		return "mem-leak"
	case ClassThreadLeak:
		return "thread-leak"
	case ClassConnLeak:
		return "conn-leak"
	case ClassCombined:
		return "combined"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ClassNames returns the class names in Class order, for CLI help and
// fail-fast error messages.
func ClassNames() []string {
	names := make([]string, numClasses)
	for c := Class(0); c < numClasses; c++ {
		names[c] = c.String()
	}
	return names
}

// ParseClass resolves a class name ("conn-leak", ...); the error for an
// unknown name lists every valid one.
func ParseClass(name string) (Class, error) {
	for c := Class(0); c < numClasses; c++ {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("fleet: unknown instance class %q (known: %s)",
		name, strings.Join(ClassNames(), ", "))
}

// InstanceSpec is the static description of one simulated application-server
// instance: its aging profile, workload level and workload phase. Specs are
// drawn deterministically from the fleet seed, so the same seed always yields
// the same heterogeneous population.
type InstanceSpec struct {
	// ID is the instance's position in the fleet (0-based). It also drives
	// the consistent instance→shard assignment.
	ID int
	// Class is the aging-fault bucket the profile was drawn from.
	Class Class
	// Profile is the per-instance aging parameterisation. Replaying it
	// through testbed.ProfileRunConfig reproduces the instance as a
	// full-fidelity single-server execution.
	Profile injector.Profile
	// EBs is the instance's mean workload (emulated browsers).
	EBs int
	// AmpFrac, PeriodSec and OffsetSec shape the instance's diurnal-style
	// load oscillation: active load = EBs·(1 + AmpFrac·sin(2π(t+Offset)/Period)).
	AmpFrac   float64
	PeriodSec float64
	OffsetSec float64
}

// Capacity constants of one simulated instance, mirroring the defaults of
// internal/appserver and internal/jvm (1 GB heap with 128 MB young and 64 MB
// perm zones, 1024-thread process limit, 100-connection MySQL pool).
const (
	oldMaxMB    = 832.0 // 1024 heap − 128 young − 64 perm
	youngMaxMB  = 128.0
	oldBaseMB   = 140.0 // steady-state old-gen footprint without a leak
	maxThreads  = 1024.0
	baseThreads = 45.0
	maxDBConns  = 100.0

	// thinkTimeSec is the TPC-W mean think time driving throughput ≈
	// EBs/(think+response); searchFrac is the search-interaction share of
	// the shopping mix, which couples the memory fault to the workload.
	thinkTimeSec = 7.0
	searchFrac   = 0.2
	baseRespSec  = 0.08

	// jvmBaseMB is the non-old, non-young process memory from the OS
	// perspective (perm zone, process base); stackMBPerThread charges native
	// stacks, as internal/jvm does.
	jvmBaseMB        = 214.0 // 64 perm + 150 process base
	stackMBPerThread = 0.5
	otherProcsMB     = 450.0
	swapMB           = 2048.0
	baseProcesses    = 115.0
	diskBaseMB       = 12000.0
	logMBPerRequest  = 0.002
)

// class mix of a fleet population, in Class order (healthy, mem, thread,
// conn, combined). Roughly a quarter of the fleet is healthy so false alarms
// have something to fire on.
var classWeights = [numClasses]float64{0.25, 0.30, 0.20, 0.15, 0.10}

// Specs draws the heterogeneous instance population of a fleet of n servers
// deterministically from the seed: per-instance class, aging rates, workload
// level and load-oscillation phase. Instance i's spec depends only on (seed,
// i), so growing the fleet keeps the existing instances' behaviour identical.
func Specs(seed uint64, n int) []InstanceSpec {
	specs := make([]InstanceSpec, n)
	for i := range specs {
		src := rng.NewNamed(seed, fmt.Sprintf("fleet/spec/%d", i))
		spec := InstanceSpec{ID: i}
		r := src.Float64()
		acc := 0.0
		for c := Class(0); c < numClasses; c++ {
			acc += classWeights[c]
			if r < acc || c == numClasses-1 {
				spec.Class = c
				break
			}
		}
		spec.EBs = src.IntBetween(40, 180)
		spec.AmpFrac = 0.2
		spec.PeriodSec = src.Float64Between(2400, 4800)
		spec.OffsetSec = src.Float64Between(0, spec.PeriodSec)
		spec.Profile = drawProfile(spec.Class, src)
		specs[i] = spec
	}
	return specs
}

// drawProfile draws the heterogeneous aging rates of one instance.
func drawProfile(c Class, src *rng.Source) injector.Profile {
	switch c {
	case ClassMemLeak:
		return injector.Profile{MemoryN: src.IntBetween(15, 60), LeakMB: 1}
	case ClassThreadLeak:
		return injector.Profile{ThreadM: src.IntBetween(4, 10), ThreadT: src.IntBetween(30, 60)}
	case ClassConnLeak:
		return injector.Profile{ConnC: src.IntBetween(2, 6), ConnT: src.IntBetween(60, 120)}
	case ClassCombined:
		return injector.Profile{
			MemoryN: src.IntBetween(30, 80), LeakMB: 1,
			ThreadM: src.IntBetween(2, 5), ThreadT: src.IntBetween(60, 120),
		}
	default:
		return injector.Profile{}
	}
}

// stepKind selects the specialised stepper matched to an instance's fault
// mix. Each specialised stepper elides exactly the work the generic stepper
// provably never does for that mix — rate terms that are identically zero,
// Normal draws inside never-taken branches, TTF candidates of absent faults —
// and substitutes precomputed constants for subexpressions that are invariant
// for the mix. Nothing is reassociated: every float operation that does run
// is the very operation stepGeneric would run, so the trajectories are
// bit-identical (pinned by the step-equivalence suite in step_equiv_test.go).
type stepKind uint8

const (
	// stepKindGeneric is the reference path: the original all-fault stepper.
	// Chosen for any rate combination without a specialised stepper.
	stepKindGeneric stepKind = iota
	stepKindHealthy
	stepKindMem
	stepKindThread
	stepKindConn
	stepKindMemThread
)

// instance is the live state of one simulated server. The model is
// deliberately phenomenological and cheap — a fleet of thousands must step in
// wall-clock milliseconds per simulated tick — but it emits the same Table 2
// checkpoint schema as the full testbed, with the same leak-rate semantics as
// the real injectors (injector.Profile's expected rates), so the Table 2
// feature pipeline and the M5P predictor run on it unchanged.
type instance struct {
	spec InstanceSpec
	src  *rng.Source

	// Loop-invariant per-spec values, hoisted once at newInstance time so
	// the per-tick steppers call no injector.Profile methods and redo no
	// spec arithmetic. Each holds exactly the value the generic stepper
	// would compute — hoisting moves work, never reassociates it.
	kind      stepKind
	ebsF      float64 // float64(spec.EBs)
	memPerHit float64 // spec.Profile.MemoryMBPerHit()
	thrRate   float64 // spec.Profile.ThreadsPerSec()
	connRate  float64 // spec.Profile.ConnsPerSec()

	// aging state (reset by rejuvenation/recovery)
	oldUsedMB   float64
	leakThreads float64
	leakConns   float64

	// diskMB survives restarts: access logs are not truncated.
	diskMB float64

	// values from the latest step, read by the controller.
	refTTFSec float64
	thr       float64
}

// newInstance creates the live instance for a spec. The per-instance random
// stream depends only on (seed, ID), keeping every instance's trajectory
// independent of fleet size, shard count and the fate of its neighbours.
func newInstance(seed uint64, spec InstanceSpec) *instance {
	in := &instance{
		spec:      spec,
		src:       rng.NewNamed(seed, fmt.Sprintf("fleet/inst/%d", spec.ID)),
		diskMB:    diskBaseMB,
		ebsF:      float64(spec.EBs),
		memPerHit: spec.Profile.MemoryMBPerHit(),
		thrRate:   spec.Profile.ThreadsPerSec(),
		connRate:  spec.Profile.ConnsPerSec(),
	}
	// The profile methods return exactly 0 for an absent fault, so the rate
	// signs identify the mix; any combination without a specialised stepper
	// falls back to the generic reference path.
	switch {
	case in.memPerHit == 0 && in.thrRate == 0 && in.connRate == 0:
		in.kind = stepKindHealthy
	case in.memPerHit > 0 && in.thrRate == 0 && in.connRate == 0:
		in.kind = stepKindMem
	case in.memPerHit == 0 && in.thrRate > 0 && in.connRate == 0:
		in.kind = stepKindThread
	case in.memPerHit == 0 && in.thrRate == 0 && in.connRate > 0:
		in.kind = stepKindConn
	case in.memPerHit > 0 && in.thrRate > 0 && in.connRate == 0:
		in.kind = stepKindMemThread
	default:
		in.kind = stepKindGeneric
	}
	in.reset()
	return in
}

// reset clears the aging state, as a rejuvenation (or crash recovery) does:
// the JVM restarts with a fresh heap, thread set and connection pool.
func (in *instance) reset() {
	in.oldUsedMB = oldBaseMB
	in.leakThreads = 0
	in.leakConns = 0
	in.refTTFSec = monitor.InfiniteTTFSec
}

// activeEBs is the instance's oscillating load at time t. Pure function of
// (spec, t): it draws no randomness, so it is also usable while the instance
// is down to estimate the traffic being turned away.
func (in *instance) activeEBs(tSec float64) float64 {
	s := &in.spec
	return in.ebsF * (1 + s.AmpFrac*math.Sin(2*math.Pi*(tSec+s.OffsetSec)/s.PeriodSec))
}

// expectedThroughput estimates the request rate the instance would serve at
// time t if it were healthy — the rate its users keep offering while it is
// down, i.e. the lost-request rate. No randomness.
func (in *instance) expectedThroughput(tSec float64) float64 {
	return in.activeEBs(tSec) / (thinkTimeSec + baseRespSec)
}

// Response-time pressure constants of a leak-free heap and connection pool:
// respPressure0 is the bracketed pressure sum with heapPressure frozen at its
// oldBaseMB/oldMaxMB base and connPressure at zero, respBase0 the resulting
// noise-free response time. Both are computed with exactly the float
// operations (and operand order) the generic stepper performs, so the
// specialised steppers that substitute them stay bit-identical.
var (
	respPressure0 = 1 + 3*pow4(oldBaseMB/oldMaxMB)
	respBase0     = baseRespSec * respPressure0
)

// step advances the instance by one checkpoint interval ending at tSec and
// writes the monitored checkpoint into *cp, or returns crashed=true (leaving
// *cp untouched) when a resource ran out during the interval. The out
// parameter lets the shard workers step straight into the prediction pool's
// per-instance slot instead of copying the 20-field checkpoint twice per
// tick. All randomness comes from the instance's own stream (which keeps its
// position across resets), so the whole trajectory is a pure function of
// (seed, spec, sequence of step calls) — independent of fleet size, shard
// count and sibling instances.
//
// step dispatches to the specialised stepper of the instance's fault mix;
// every specialisation draws the identical random sequence and computes
// bit-identical state to stepGeneric (see stepKind).
func (in *instance) step(tSec, dtSec float64, cp *monitor.Checkpoint) (crashed bool) {
	switch in.kind {
	case stepKindHealthy:
		return in.stepHealthy(tSec, dtSec, cp)
	case stepKindMem:
		return in.stepMem(tSec, dtSec, cp)
	case stepKindThread:
		return in.stepThread(tSec, dtSec, cp)
	case stepKindConn:
		return in.stepConn(tSec, dtSec, cp)
	case stepKindMemThread:
		return in.stepMemThread(tSec, dtSec, cp)
	default:
		return in.stepGeneric(tSec, dtSec, cp)
	}
}

// stepGeneric is the reference stepper: the original all-fault step body,
// kept verbatim (profile-method calls included) as the ground truth the
// step-equivalence suite diffs every specialised stepper against.
func (in *instance) stepGeneric(tSec, dtSec float64, cp *monitor.Checkpoint) (crashed bool) {
	active := in.activeEBs(tSec)

	// Response time degrades super-linearly as the old generation fills
	// (GC overhead) and as the connection pool saturates.
	heapPressure := in.oldUsedMB / oldMaxMB
	connPressure := in.leakConns / maxDBConns
	resp := baseRespSec*(1+3*pow4(heapPressure)+pow4(connPressure)) + in.src.Normal(0, 0.004)
	if resp < 0.01 {
		resp = 0.01
	}
	in.thr = active / (thinkTimeSec + resp)

	// Apply the aging faults at the injectors' expected rates. The memory
	// fault is request-coupled (it scales with the load the instance sees
	// right now, spikes included); threads and connections leak on wall
	// time.
	p := in.spec.Profile
	memRate := in.thr * searchFrac * p.MemoryMBPerHit() // MB/s
	if memRate > 0 {
		in.oldUsedMB += memRate*dtSec + in.src.Normal(0, 0.4)
		if in.oldUsedMB < oldBaseMB {
			in.oldUsedMB = oldBaseMB
		}
	}
	thrRate := p.ThreadsPerSec()
	if thrRate > 0 {
		in.leakThreads += thrRate*dtSec + in.src.Normal(0, 0.25)
		if in.leakThreads < 0 {
			in.leakThreads = 0
		}
	}
	connRate := p.ConnsPerSec()
	if connRate > 0 {
		in.leakConns += connRate*dtSec + in.src.Normal(0, 0.15)
		if in.leakConns < 0 {
			in.leakConns = 0
		}
	}

	// Gauges derived from the load (Little's law for the busy workers).
	busy := in.thr * resp
	threads := baseThreads + busy + in.leakThreads
	busyConns := 0.5 * busy
	conns := busyConns + in.leakConns

	// The three ways an aged instance dies, mirroring appserver's crash
	// reasons: heap exhaustion, thread exhaustion, connection-pool
	// exhaustion.
	if in.oldUsedMB >= oldMaxMB || threads >= maxThreads || conns >= maxDBConns {
		return true
	}

	// Ground-truth time to failure under the current rates — the "freeze the
	// current injection rate" reference the paper uses for experiment 4.2.
	// Every candidate is positive here (the exhaustion check above ruled out
	// depleted resources), so plain comparisons replace math.Min/Max without
	// changing a single bit.
	ttf := monitor.InfiniteTTFSec
	if memRate > 1e-9 {
		if v := (oldMaxMB - in.oldUsedMB) / memRate; v < ttf {
			ttf = v
		}
	}
	if thrRate > 1e-9 {
		if v := (maxThreads - threads) / thrRate; v < ttf {
			ttf = v
		}
	}
	if connRate > 1e-9 {
		if v := (maxDBConns - conns) / connRate; v < ttf {
			ttf = v
		}
	}
	in.refTTFSec = ttf

	in.diskMB += in.thr * dtSec * logMBPerRequest
	youngUsed := in.src.Float64Between(16, youngMaxMB*0.85)
	tomcatMem := jvmBaseMB + in.oldUsedMB + youngUsed + stackMBPerThread*threads
	// Field stores instead of a composite literal: assigning a 20-field
	// struct literal makes the compiler build a 160-byte temporary and
	// duffcopy it into *cp; storing through the pointer writes each field
	// once. TTFSec is the one field the literal left at zero — the slot is
	// reused across ticks, so zero it explicitly.
	cp.TimeSec = tSec
	cp.Throughput = in.thr
	cp.Workload = active
	cp.ResponseTimeSec = resp
	cp.SystemLoad = busy
	cp.DiskUsedMB = in.diskMB
	cp.SwapFreeMB = swapMB
	cp.NumProcesses = baseProcesses
	cp.SystemMemUsedMB = otherProcsMB + tomcatMem
	cp.TomcatMemUsedMB = tomcatMem
	cp.NumThreads = threads
	cp.NumHTTPConns = active * 0.5
	cp.NumMySQLConns = conns
	cp.YoungMaxMB = youngMaxMB
	cp.OldMaxMB = oldMaxMB
	cp.YoungUsedMB = youngUsed
	cp.OldUsedMB = in.oldUsedMB
	cp.YoungPct = 100 * youngUsed / youngMaxMB
	cp.OldPct = 100 * in.oldUsedMB / oldMaxMB
	cp.TTFSec = 0
	return false
}

// stepHealthy serves the fault-free class: heapPressure is frozen at its
// leak-free base and connPressure at zero, so the noise-free response time is
// the precomputed respBase0; no leak accumulates, no Normal rate draws
// happen in the generic stepper either (their guards are identically false),
// and every TTF candidate is infinite.
func (in *instance) stepHealthy(tSec, dtSec float64, cp *monitor.Checkpoint) bool {
	active := in.activeEBs(tSec)
	resp := respBase0 + in.src.Normal(0, 0.004)
	if resp < 0.01 {
		resp = 0.01
	}
	in.thr = active / (thinkTimeSec + resp)

	busy := in.thr * resp
	threads := baseThreads + busy // leakThreads is identically 0
	conns := 0.5 * busy           // busyConns; leakConns is identically 0
	if in.oldUsedMB >= oldMaxMB || threads >= maxThreads || conns >= maxDBConns {
		return true
	}
	in.refTTFSec = monitor.InfiniteTTFSec
	in.diskMB += in.thr * dtSec * logMBPerRequest
	youngUsed := in.src.Float64Between(16, youngMaxMB*0.85)
	tomcatMem := jvmBaseMB + in.oldUsedMB + youngUsed + stackMBPerThread*threads
	// Checkpoint epilogue by field stores; see stepGeneric's comment.
	cp.TimeSec = tSec
	cp.Throughput = in.thr
	cp.Workload = active
	cp.ResponseTimeSec = resp
	cp.SystemLoad = busy
	cp.DiskUsedMB = in.diskMB
	cp.SwapFreeMB = swapMB
	cp.NumProcesses = baseProcesses
	cp.SystemMemUsedMB = otherProcsMB + tomcatMem
	cp.TomcatMemUsedMB = tomcatMem
	cp.NumThreads = threads
	cp.NumHTTPConns = active * 0.5
	cp.NumMySQLConns = conns
	cp.YoungMaxMB = youngMaxMB
	cp.OldMaxMB = oldMaxMB
	cp.YoungUsedMB = youngUsed
	cp.OldUsedMB = in.oldUsedMB
	cp.YoungPct = 100 * youngUsed / youngMaxMB
	cp.OldPct = 100 * in.oldUsedMB / oldMaxMB
	cp.TTFSec = 0
	return false
}

// stepMem serves the request-coupled memory-leak class. connPressure is
// identically zero, so its pow4 term — the last addend of the pressure sum —
// vanishes; the thread/connection leak blocks and TTF candidates are elided
// the same way.
func (in *instance) stepMem(tSec, dtSec float64, cp *monitor.Checkpoint) bool {
	active := in.activeEBs(tSec)
	heapPressure := in.oldUsedMB / oldMaxMB
	resp := baseRespSec*(1+3*pow4(heapPressure)) + in.src.Normal(0, 0.004)
	if resp < 0.01 {
		resp = 0.01
	}
	in.thr = active / (thinkTimeSec + resp)

	// The memory fault is request-coupled: its rate scales with the load the
	// instance sees right now. The guard is kept (not folded into the kind)
	// because memRate inherits the sign of the live throughput.
	memRate := in.thr * searchFrac * in.memPerHit
	if memRate > 0 {
		in.oldUsedMB += memRate*dtSec + in.src.Normal(0, 0.4)
		if in.oldUsedMB < oldBaseMB {
			in.oldUsedMB = oldBaseMB
		}
	}

	busy := in.thr * resp
	threads := baseThreads + busy
	conns := 0.5 * busy
	if in.oldUsedMB >= oldMaxMB || threads >= maxThreads || conns >= maxDBConns {
		return true
	}

	ttf := monitor.InfiniteTTFSec
	if memRate > 1e-9 {
		if v := (oldMaxMB - in.oldUsedMB) / memRate; v < ttf {
			ttf = v
		}
	}
	in.refTTFSec = ttf
	in.diskMB += in.thr * dtSec * logMBPerRequest
	youngUsed := in.src.Float64Between(16, youngMaxMB*0.85)
	tomcatMem := jvmBaseMB + in.oldUsedMB + youngUsed + stackMBPerThread*threads
	// Checkpoint epilogue by field stores; see stepGeneric's comment.
	cp.TimeSec = tSec
	cp.Throughput = in.thr
	cp.Workload = active
	cp.ResponseTimeSec = resp
	cp.SystemLoad = busy
	cp.DiskUsedMB = in.diskMB
	cp.SwapFreeMB = swapMB
	cp.NumProcesses = baseProcesses
	cp.SystemMemUsedMB = otherProcsMB + tomcatMem
	cp.TomcatMemUsedMB = tomcatMem
	cp.NumThreads = threads
	cp.NumHTTPConns = active * 0.5
	cp.NumMySQLConns = conns
	cp.YoungMaxMB = youngMaxMB
	cp.OldMaxMB = oldMaxMB
	cp.YoungUsedMB = youngUsed
	cp.OldUsedMB = in.oldUsedMB
	cp.YoungPct = 100 * youngUsed / youngMaxMB
	cp.OldPct = 100 * in.oldUsedMB / oldMaxMB
	cp.TTFSec = 0
	return false
}

// stepThread serves the wall-time thread-leak class: the heap stays at its
// base (respBase0) and in.thrRate > 0 by kind selection, so the leak guard is
// folded away while the leak arithmetic stays verbatim.
func (in *instance) stepThread(tSec, dtSec float64, cp *monitor.Checkpoint) bool {
	active := in.activeEBs(tSec)
	resp := respBase0 + in.src.Normal(0, 0.004)
	if resp < 0.01 {
		resp = 0.01
	}
	in.thr = active / (thinkTimeSec + resp)

	in.leakThreads += in.thrRate*dtSec + in.src.Normal(0, 0.25)
	if in.leakThreads < 0 {
		in.leakThreads = 0
	}

	busy := in.thr * resp
	threads := baseThreads + busy + in.leakThreads
	conns := 0.5 * busy
	if in.oldUsedMB >= oldMaxMB || threads >= maxThreads || conns >= maxDBConns {
		return true
	}

	ttf := monitor.InfiniteTTFSec
	if in.thrRate > 1e-9 {
		if v := (maxThreads - threads) / in.thrRate; v < ttf {
			ttf = v
		}
	}
	in.refTTFSec = ttf
	in.diskMB += in.thr * dtSec * logMBPerRequest
	youngUsed := in.src.Float64Between(16, youngMaxMB*0.85)
	tomcatMem := jvmBaseMB + in.oldUsedMB + youngUsed + stackMBPerThread*threads
	// Checkpoint epilogue by field stores; see stepGeneric's comment.
	cp.TimeSec = tSec
	cp.Throughput = in.thr
	cp.Workload = active
	cp.ResponseTimeSec = resp
	cp.SystemLoad = busy
	cp.DiskUsedMB = in.diskMB
	cp.SwapFreeMB = swapMB
	cp.NumProcesses = baseProcesses
	cp.SystemMemUsedMB = otherProcsMB + tomcatMem
	cp.TomcatMemUsedMB = tomcatMem
	cp.NumThreads = threads
	cp.NumHTTPConns = active * 0.5
	cp.NumMySQLConns = conns
	cp.YoungMaxMB = youngMaxMB
	cp.OldMaxMB = oldMaxMB
	cp.YoungUsedMB = youngUsed
	cp.OldUsedMB = in.oldUsedMB
	cp.YoungPct = 100 * youngUsed / youngMaxMB
	cp.OldPct = 100 * in.oldUsedMB / oldMaxMB
	cp.TTFSec = 0
	return false
}

// stepConn serves the connection-leak class: heapPressure is frozen at its
// base, so the pressure sum is respPressure0 plus the live connection term;
// in.connRate > 0 by kind selection folds the leak guard away.
func (in *instance) stepConn(tSec, dtSec float64, cp *monitor.Checkpoint) bool {
	active := in.activeEBs(tSec)
	connPressure := in.leakConns / maxDBConns
	resp := baseRespSec*(respPressure0+pow4(connPressure)) + in.src.Normal(0, 0.004)
	if resp < 0.01 {
		resp = 0.01
	}
	in.thr = active / (thinkTimeSec + resp)

	in.leakConns += in.connRate*dtSec + in.src.Normal(0, 0.15)
	if in.leakConns < 0 {
		in.leakConns = 0
	}

	busy := in.thr * resp
	threads := baseThreads + busy
	busyConns := 0.5 * busy
	conns := busyConns + in.leakConns
	if in.oldUsedMB >= oldMaxMB || threads >= maxThreads || conns >= maxDBConns {
		return true
	}

	ttf := monitor.InfiniteTTFSec
	if in.connRate > 1e-9 {
		if v := (maxDBConns - conns) / in.connRate; v < ttf {
			ttf = v
		}
	}
	in.refTTFSec = ttf
	in.diskMB += in.thr * dtSec * logMBPerRequest
	youngUsed := in.src.Float64Between(16, youngMaxMB*0.85)
	tomcatMem := jvmBaseMB + in.oldUsedMB + youngUsed + stackMBPerThread*threads
	// Checkpoint epilogue by field stores; see stepGeneric's comment.
	cp.TimeSec = tSec
	cp.Throughput = in.thr
	cp.Workload = active
	cp.ResponseTimeSec = resp
	cp.SystemLoad = busy
	cp.DiskUsedMB = in.diskMB
	cp.SwapFreeMB = swapMB
	cp.NumProcesses = baseProcesses
	cp.SystemMemUsedMB = otherProcsMB + tomcatMem
	cp.TomcatMemUsedMB = tomcatMem
	cp.NumThreads = threads
	cp.NumHTTPConns = active * 0.5
	cp.NumMySQLConns = conns
	cp.YoungMaxMB = youngMaxMB
	cp.OldMaxMB = oldMaxMB
	cp.YoungUsedMB = youngUsed
	cp.OldUsedMB = in.oldUsedMB
	cp.YoungPct = 100 * youngUsed / youngMaxMB
	cp.OldPct = 100 * in.oldUsedMB / oldMaxMB
	cp.TTFSec = 0
	return false
}

// stepMemThread serves the combined two-resource class (experiment 4.4):
// the memory and thread blocks of the generic stepper back to back, with
// only the connection fault's terms elided.
func (in *instance) stepMemThread(tSec, dtSec float64, cp *monitor.Checkpoint) bool {
	active := in.activeEBs(tSec)
	heapPressure := in.oldUsedMB / oldMaxMB
	resp := baseRespSec*(1+3*pow4(heapPressure)) + in.src.Normal(0, 0.004)
	if resp < 0.01 {
		resp = 0.01
	}
	in.thr = active / (thinkTimeSec + resp)

	memRate := in.thr * searchFrac * in.memPerHit
	if memRate > 0 {
		in.oldUsedMB += memRate*dtSec + in.src.Normal(0, 0.4)
		if in.oldUsedMB < oldBaseMB {
			in.oldUsedMB = oldBaseMB
		}
	}
	in.leakThreads += in.thrRate*dtSec + in.src.Normal(0, 0.25)
	if in.leakThreads < 0 {
		in.leakThreads = 0
	}

	busy := in.thr * resp
	threads := baseThreads + busy + in.leakThreads
	conns := 0.5 * busy
	if in.oldUsedMB >= oldMaxMB || threads >= maxThreads || conns >= maxDBConns {
		return true
	}

	ttf := monitor.InfiniteTTFSec
	if memRate > 1e-9 {
		if v := (oldMaxMB - in.oldUsedMB) / memRate; v < ttf {
			ttf = v
		}
	}
	if in.thrRate > 1e-9 {
		if v := (maxThreads - threads) / in.thrRate; v < ttf {
			ttf = v
		}
	}
	in.refTTFSec = ttf
	in.diskMB += in.thr * dtSec * logMBPerRequest
	youngUsed := in.src.Float64Between(16, youngMaxMB*0.85)
	tomcatMem := jvmBaseMB + in.oldUsedMB + youngUsed + stackMBPerThread*threads
	// Checkpoint epilogue by field stores; see stepGeneric's comment.
	cp.TimeSec = tSec
	cp.Throughput = in.thr
	cp.Workload = active
	cp.ResponseTimeSec = resp
	cp.SystemLoad = busy
	cp.DiskUsedMB = in.diskMB
	cp.SwapFreeMB = swapMB
	cp.NumProcesses = baseProcesses
	cp.SystemMemUsedMB = otherProcsMB + tomcatMem
	cp.TomcatMemUsedMB = tomcatMem
	cp.NumThreads = threads
	cp.NumHTTPConns = active * 0.5
	cp.NumMySQLConns = conns
	cp.YoungMaxMB = youngMaxMB
	cp.OldMaxMB = oldMaxMB
	cp.YoungUsedMB = youngUsed
	cp.OldUsedMB = in.oldUsedMB
	cp.YoungPct = 100 * youngUsed / youngMaxMB
	cp.OldPct = 100 * in.oldUsedMB / oldMaxMB
	cp.TTFSec = 0
	return false
}

func pow4(x float64) float64 { x *= x; return x * x }

// trainingSpecs are the fixed run-to-crash executions the fleet's shared
// model is trained on: every aging class at several representative rates and
// workloads, plus one healthy execution labelled with the paper's "infinite"
// 3-hour horizon. The rate *spread* within each class matters as much as the
// coverage: with a single training rate per resource, the resource's level
// trajectory carries the same information as its consumption speed and the
// M5P induction never selects the speed features — training across rates is
// what makes level→TTF ambiguous and the SWA speeds (the paper's core
// derived variables) worth splitting on.
func trainingSpecs() []InstanceSpec {
	base := []InstanceSpec{
		{Class: ClassMemLeak, Profile: injector.Profile{MemoryN: 20, LeakMB: 1}, EBs: 80},
		{Class: ClassMemLeak, Profile: injector.Profile{MemoryN: 45, LeakMB: 1}, EBs: 150},
		{Class: ClassThreadLeak, Profile: injector.Profile{ThreadM: 8, ThreadT: 40}, EBs: 100},
		{Class: ClassThreadLeak, Profile: injector.Profile{ThreadM: 6, ThreadT: 60}, EBs: 140},
		{Class: ClassConnLeak, Profile: injector.Profile{ConnC: 2, ConnT: 110}, EBs: 70},
		{Class: ClassConnLeak, Profile: injector.Profile{ConnC: 5, ConnT: 80}, EBs: 100},
		{Class: ClassConnLeak, Profile: injector.Profile{ConnC: 6, ConnT: 60}, EBs: 160},
		{Class: ClassCombined, Profile: injector.Profile{MemoryN: 40, LeakMB: 1, ThreadM: 4, ThreadT: 90}, EBs: 120},
		{Class: ClassHealthy, EBs: 100},
	}
	for i := range base {
		base[i].ID = i
		base[i].AmpFrac = 0.1
		base[i].PeriodSec = 3600
		base[i].OffsetSec = float64(i) * 450
	}
	return base
}

// trainingMaxDuration caps the training executions; the aging specs all
// crash well within it and the healthy run is labelled infinite at the 3 h
// horizon, so longer adds nothing.
const trainingMaxDuration = 4 * time.Hour

// TrainingSeries simulates the fleet's training executions to completion
// (crash, or the horizon for the healthy run) through the same instance
// model the fleet serves, and labels every checkpoint with its true time to
// failure. It is deterministic in the seed.
func TrainingSeries(seed uint64) ([]*monitor.Series, error) {
	specs := trainingSpecs()
	out := make([]*monitor.Series, 0, len(specs))
	dt := monitor.DefaultInterval.Seconds()
	maxTicks := int(trainingMaxDuration / monitor.DefaultInterval)
	for _, spec := range specs {
		in := newInstance(seed+1e6, spec) // offset keeps training streams off the fleet's
		s := &monitor.Series{
			Name:        fmt.Sprintf("fleet-train-%d-%s", spec.ID, spec.Class),
			IntervalSec: dt,
			Workload:    spec.EBs,
		}
		for tick := 1; tick <= maxTicks; tick++ {
			t := float64(tick) * dt
			var cp monitor.Checkpoint
			if in.step(t, dt, &cp) {
				s.Crashed = true
				s.CrashTimeSec = t
				s.CrashReason = "resource exhaustion"
				break
			}
			s.Checkpoints = append(s.Checkpoints, cp)
		}
		if spec.Profile.Aging() && !s.Crashed {
			return nil, fmt.Errorf("fleet: training run %q (%s) did not crash within %v",
				s.Name, spec.Profile, trainingMaxDuration)
		}
		for i := range s.Checkpoints {
			if s.Crashed {
				s.Checkpoints[i].TTFSec = math.Max(0, s.CrashTimeSec-s.Checkpoints[i].TimeSec)
			} else {
				s.Checkpoints[i].TTFSec = monitor.InfiniteTTFSec
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// TrainModel trains the fleet's shared base model — an M5P tree over the
// full Table 2 variable set — from the fleet's training executions. Train
// once, then hand the model to Config.Model (Run creates a Session per
// instance; the immutable model is shared read-only across shards). The
// model persists with core's Encode/DecodeModel, so a fleet can also serve a
// previously-saved artifact instead of retraining.
func TrainModel(seed uint64) (*core.Model, error) {
	return TrainModelSchema(seed, nil)
}

// TrainModelSchema is TrainModel with an explicit feature schema (nil = the
// full Table 2 schema): the same training executions, extracted and learned
// under the given schema. This is how a fleet gets e.g. the "full+conn"
// connection-speed derivatives.
func TrainModelSchema(seed uint64, schema *features.Schema) (*core.Model, error) {
	series, err := TrainingSeries(seed)
	if err != nil {
		return nil, err
	}
	return trainModelOn(series, schema)
}

// trainModelOn fits the shared M5P model on already-simulated training
// series under the given schema (nil = full).
func trainModelOn(series []*monitor.Series, schema *features.Schema) (*core.Model, error) {
	m, err := core.Train(core.Config{Schema: schema}, series)
	if err != nil {
		return nil, fmt.Errorf("fleet: training shared model: %w", err)
	}
	return m, nil
}
