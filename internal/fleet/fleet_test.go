package fleet

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"agingpred/internal/core"
	"agingpred/internal/features"
	"agingpred/internal/monitor"
	"agingpred/internal/obs"
)

// sharedModel trains the fleet model once per test binary; training is the
// expensive part of these tests and every fleet run can reuse it.
var (
	sharedOnce  sync.Once
	sharedModel *core.Model
	sharedErr   error
)

func testModel(t testing.TB) *core.Model {
	t.Helper()
	sharedOnce.Do(func() {
		sharedModel, sharedErr = TrainModel(1)
	})
	if sharedErr != nil {
		t.Fatalf("TrainModel: %v", sharedErr)
	}
	return sharedModel
}

func TestSpecsDeterministicAndHeterogeneous(t *testing.T) {
	a := Specs(7, 300)
	b := Specs(7, 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs across draws: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Growing the fleet keeps existing instances' specs identical.
	bigger := Specs(7, 400)
	for i := range a {
		if bigger[i] != a[i] {
			t.Fatalf("spec %d changed when the fleet grew: %+v vs %+v", i, bigger[i], a[i])
		}
	}
	seen := map[Class]int{}
	for i, s := range a {
		if s.ID != i {
			t.Fatalf("spec %d has ID %d", i, s.ID)
		}
		if s.EBs < 40 || s.EBs > 180 {
			t.Fatalf("spec %d EBs %d out of range", i, s.EBs)
		}
		if err := s.Profile.Validate(); err != nil {
			t.Fatalf("spec %d profile invalid: %v", i, err)
		}
		if (s.Class == ClassHealthy) == s.Profile.Aging() {
			t.Fatalf("spec %d class %s does not match profile %s", i, s.Class, s.Profile)
		}
		seen[s.Class]++
	}
	for c := Class(0); c < numClasses; c++ {
		if seen[c] == 0 {
			t.Errorf("class %s absent from a 300-instance fleet", c)
		}
	}
}

func TestTrainingSeriesShape(t *testing.T) {
	series, err := TrainingSeries(3)
	if err != nil {
		t.Fatalf("TrainingSeries: %v", err)
	}
	if len(series) != len(trainingSpecs()) {
		t.Fatalf("%d series for %d specs", len(series), len(trainingSpecs()))
	}
	crashed := 0
	for _, s := range series {
		if s.Len() == 0 {
			t.Fatalf("series %q is empty", s.Name)
		}
		if s.Crashed {
			crashed++
			last := s.Checkpoints[s.Len()-1]
			if last.TTFSec > s.CrashTimeSec {
				t.Fatalf("series %q last label %v exceeds crash time %v", s.Name, last.TTFSec, s.CrashTimeSec)
			}
		} else {
			if !strings.Contains(s.Name, "healthy") {
				t.Fatalf("aging series %q did not crash", s.Name)
			}
			for _, cp := range s.Checkpoints {
				if cp.TTFSec != monitor.InfiniteTTFSec {
					t.Fatalf("healthy series labelled %v, want infinite", cp.TTFSec)
				}
			}
		}
	}
	if crashed != len(series)-1 {
		t.Fatalf("%d of %d training series crashed, want all but the healthy one", crashed, len(series))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Instances: 0, Duration: time.Hour}); err == nil {
		t.Fatalf("zero instances accepted")
	}
	if _, err := Run(Config{Instances: 10}); err == nil {
		t.Fatalf("zero duration accepted")
	}
	// core.Train returns only trained, immutable models, but a zero
	// &core.Model{} is still constructible; it must be rejected up front,
	// not panic mid-run.
	if _, err := Run(Config{Instances: 10, Duration: time.Hour, Model: &core.Model{}}); err == nil {
		t.Fatalf("zero core.Model accepted")
	}
	if _, err := Run(Config{Instances: 10, Duration: time.Hour,
		ClassSchemas: map[Class]*features.Schema{Class(99): nil}}); err == nil {
		t.Fatalf("out-of-range ClassSchemas key accepted")
	}
}

// TestRunDeterministicAcrossShardCounts is the core guarantee of the fleet
// engine: shard count is a throughput knob, not a behaviour knob. Every
// prediction now flows through the shard workers' batch path (staged feature
// rows, PredictBatch sweeps), and the shard count decides how instances are
// grouped into batches — so this test is also the pin that batch grouping
// never changes results. The same seed must yield a byte-identical JSON
// summary at 1 shard, 3 shards (ragged groups), 4 shards, and across
// repetitions.
func TestRunDeterministicAcrossShardCounts(t *testing.T) {
	model := testModel(t)
	run := func(shards int) []byte {
		rep, err := Run(Config{
			Instances: 24,
			Shards:    shards,
			Duration:  90 * time.Minute,
			Seed:      5,
			Model:     model,
		})
		if err != nil {
			t.Fatalf("Run with %d shards: %v", shards, err)
		}
		rep.Shards = 0 // the echoed shard count is the only allowed difference
		js, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return js
	}
	one := run(1)
	again := run(1)
	three := run(3)
	four := run(4)
	if !bytes.Equal(one, again) {
		t.Fatalf("two identical runs differ:\n%s\nvs\n%s", one, again)
	}
	if !bytes.Equal(one, three) {
		t.Fatalf("1-shard and 3-shard runs differ:\n%s\nvs\n%s", one, three)
	}
	if !bytes.Equal(one, four) {
		t.Fatalf("1-shard and 4-shard runs differ:\n%s\nvs\n%s", one, four)
	}
}

// TestJournalAndReportDeterministicAcrossEngines is the one-barrier engine's
// full determinism pin: the JSON report AND the event journal must be
// byte-identical across shard counts 1, 3 (ragged groups) and 4, and across
// the parallel engine vs the retained serial-stepping reference path — the
// original driver-stepped formulation the workers' step+merge split claims to
// reproduce bit for bit.
func TestJournalAndReportDeterministicAcrossEngines(t *testing.T) {
	model := testModel(t)
	run := func(shards int, serial bool) (report, journal []byte) {
		var buf bytes.Buffer
		jnl := obs.NewJournal(&buf)
		rep, err := Run(Config{
			Instances:  24,
			Shards:     shards,
			Duration:   90 * time.Minute,
			Seed:       5,
			Model:      model,
			Journal:    jnl,
			serialStep: serial,
		})
		if err != nil {
			t.Fatalf("Run (shards=%d serial=%v): %v", shards, serial, err)
		}
		if err := jnl.Close(); err != nil {
			t.Fatalf("journal close: %v", err)
		}
		if jnl.Len() == 0 {
			t.Fatalf("empty journal; the determinism check would be vacuous")
		}
		rep.Shards = 0 // the echoed shard count is the only allowed difference
		js, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return js, buf.Bytes()
	}
	refRep, refJnl := run(1, false)
	for _, c := range []struct {
		name   string
		shards int
		serial bool
	}{
		{"shards-3", 3, false},
		{"shards-4", 4, false},
		{"serial-1", 1, true},
		{"serial-3", 3, true},
	} {
		rep, jnl := run(c.shards, c.serial)
		if !bytes.Equal(refRep, rep) {
			t.Errorf("%s report differs from the 1-shard parallel reference:\n%s\nvs\n%s", c.name, refRep, rep)
		}
		if !bytes.Equal(refJnl, jnl) {
			t.Errorf("%s journal differs from the 1-shard parallel reference", c.name)
		}
	}
}

// TestPerClassSchema exercises the per-class schema choice: the conn-leak
// class runs on the "full+conn" schema (connection-speed derivatives) while
// the rest of the fleet stays on the paper's full Table 2 set. The run must
// stay deterministic and the report must say which schema each class ran on.
func TestPerClassSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an extra model and runs two fleets")
	}
	connSchema, err := features.LookupSchema(features.FullConnSchemaName)
	if err != nil {
		t.Fatalf("LookupSchema: %v", err)
	}
	cfg := Config{
		Instances:    48,
		Shards:       2,
		Duration:     3 * time.Hour,
		Seed:         2,
		ClassSchemas: map[Class]*features.Schema{ClassConnLeak: connSchema},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run (repeat): %v", err)
	}
	js1, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	js2, err := again.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Fatalf("per-class-schema run is not deterministic:\n%s\nvs\n%s", js1, js2)
	}
	classOf := func(r *Report, name string) ClassReport {
		for _, c := range r.Classes {
			if c.Class == name {
				return c
			}
		}
		t.Fatalf("class %s missing from report", name)
		return ClassReport{}
	}
	if got := classOf(rep, "conn-leak").Schema; got != features.FullConnSchemaName {
		t.Fatalf("conn-leak class reports schema %q, want %q", got, features.FullConnSchemaName)
	}
	if got := classOf(rep, "mem-leak").Schema; got != features.FullSchemaName {
		t.Fatalf("mem-leak class reports schema %q, want %q", got, features.FullSchemaName)
	}
}

// TestConnSchemaImprovesPredictions is the schema A/B at fixed behaviour:
// the same conn-leak checkpoint streams (no controller, no rejuvenations, so
// the trajectories are identical for both models) observed by the "full" and
// the "full+conn" predictors, scored against the frozen-rate reference TTF.
// Comparing fleet-run aggregate MAEs would confound the schemas with the
// control loop they drive — better predictions rejuvenate earlier and more
// often, which changes the trajectory mix — so the shadow comparison is the
// honest measurement of what the connection-speed derivatives buy.
func TestConnSchemaImprovesPredictions(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	const seed = 1
	connSchema, err := features.LookupSchema(features.FullConnSchemaName)
	if err != nil {
		t.Fatalf("LookupSchema: %v", err)
	}
	fullModel, err := TrainModelSchema(seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	connModel, err := TrainModelSchema(seed, connSchema)
	if err != nil {
		t.Fatal(err)
	}
	specs := Specs(seed, 96)
	var fullErr, connErr float64
	var n int
	for _, spec := range specs {
		if spec.Class != ClassConnLeak {
			continue
		}
		in := newInstance(seed, spec)
		fc, cc := fullModel.NewSession(), connModel.NewSession()
		dt := monitor.DefaultInterval.Seconds()
		for tick := 1; tick <= 4*240; tick++ { // 4 simulated hours
			ts := float64(tick) * dt
			var cp monitor.Checkpoint
			if in.step(ts, dt, &cp) {
				break
			}
			pf, err := fc.Observe(cp)
			if err != nil {
				t.Fatal(err)
			}
			pc, err := cc.Observe(cp)
			if err != nil {
				t.Fatal(err)
			}
			ref := in.refTTFSec
			fullErr += abs(pf.TTFSec - ref)
			connErr += abs(pc.TTFSec - ref)
			n++
		}
	}
	if n == 0 {
		t.Fatal("no conn-leak checkpoints scored")
	}
	fullMAE, connMAE := fullErr/float64(n), connErr/float64(n)
	t.Logf("conn-leak shadow MAE over %d checkpoints: full %.0f s, full+conn %.0f s", n, fullMAE, connMAE)
	if connMAE >= fullMAE {
		t.Fatalf("full+conn schema did not improve the conn-leak prediction MAE: %.0f s vs %.0f s (full)",
			connMAE, fullMAE)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestRunClosesTheLoop runs a fleet long enough for the aging classes to hit
// their thresholds and checks the monitor → predict → rejuvenate loop
// actually fires: rejuvenations happen, genuinely-doomed instances dominate
// them, healthy instances never crash, and the budget cap holds.
func TestRunClosesTheLoop(t *testing.T) {
	model := testModel(t)
	rep, err := Run(Config{
		Instances: 48,
		Shards:    2,
		Duration:  3 * time.Hour,
		Seed:      2,
		Model:     model,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Checkpoints == 0 || rep.ServedRequests <= 0 {
		t.Fatalf("fleet served nothing: %+v", rep)
	}
	if rep.Rejuvenations == 0 {
		t.Fatalf("no rejuvenations over 3 h with every aging class present:\n%s", rep)
	}
	if rep.CrashesAvoided == 0 {
		t.Fatalf("no crashes avoided:\n%s", rep)
	}
	if rep.MaxConcurrentRejuvenations > rep.RejuvenationBudget {
		t.Fatalf("budget cap violated: peak %d > budget %d", rep.MaxConcurrentRejuvenations, rep.RejuvenationBudget)
	}
	if rep.Availability <= 0.5 || rep.Availability > 1 {
		t.Fatalf("implausible availability %v", rep.Availability)
	}
	classes := map[string]ClassReport{}
	for _, c := range rep.Classes {
		classes[c.Class] = c
	}
	healthy, ok := classes["healthy"]
	if !ok || healthy.Instances == 0 {
		t.Fatalf("no healthy class in report: %+v", rep.Classes)
	}
	if healthy.Crashes != 0 {
		t.Fatalf("healthy instances crashed %d times", healthy.Crashes)
	}
	// Prediction error must be far from degenerate on the classes whose
	// resources have sliding-window speed features in Table 2 (memory and
	// threads). Connection aging has no speed feature in the paper's
	// variable set, so its MAE is structurally worse — it only has to show
	// up in the report.
	for _, name := range []string{"mem-leak", "thread-leak"} {
		c, ok := classes[name]
		if !ok || c.Checkpoints == 0 {
			t.Fatalf("class %s missing from report", name)
		}
		if c.MAESec <= 0 || c.MAESec > monitor.InfiniteTTFSec/2 {
			t.Fatalf("class %s MAE %v out of plausible range", name, c.MAESec)
		}
	}
	if c, ok := classes["conn-leak"]; !ok || c.Checkpoints == 0 {
		t.Fatalf("conn-leak class missing from report")
	}
	if !strings.Contains(rep.String(), "rejuvenations") {
		t.Fatalf("String() lost the headline:\n%s", rep)
	}
}

// TestRunBudgetArbitration drives every instance into alerting (the
// threshold admits even "infinite" predictions) with a budget of one, so the
// controller must defer alerts and never exceed one concurrent restart.
func TestRunBudgetArbitration(t *testing.T) {
	model := testModel(t)
	rep, err := Run(Config{
		Instances:          16,
		Shards:             2,
		Duration:           30 * time.Minute,
		Seed:               3,
		Model:              model,
		TTFThreshold:       4 * time.Hour, // above the infinite horizon: everything alerts
		RejuvenationBudget: 1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.MaxConcurrentRejuvenations != 1 {
		t.Fatalf("peak concurrency %d with budget 1", rep.MaxConcurrentRejuvenations)
	}
	if rep.BudgetDenied == 0 {
		t.Fatalf("no alerts deferred although all 16 instances alert against budget 1:\n%s", rep)
	}
}

func TestRunHonoursCancelledContext(t *testing.T) {
	model := testModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Run(Config{
		Instances: 500,
		Shards:    2,
		Duration:  24 * time.Hour,
		Seed:      1,
		Model:     model,
		Ctx:       ctx,
	})
	if err == nil {
		t.Fatalf("cancelled run succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v to return", elapsed)
	}
}

func TestShardAssignmentConsistent(t *testing.T) {
	counts := make([]int, 8)
	for id := 0; id < 4096; id++ {
		s := shardOf(id, 8)
		if s != shardOf(id, 8) {
			t.Fatalf("shard assignment of %d is not stable", id)
		}
		counts[s%8]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d received no instances", s)
		}
	}
}
