package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"agingpred/internal/obs"
)

// journalRun drives one adaptive fleet run with a journal into a buffer and
// returns the raw JSONL bytes.
func journalRun(t *testing.T, shards int) []byte {
	t.Helper()
	var buf bytes.Buffer
	jnl := obs.NewJournal(&buf)
	cfg := adaptiveTestConfig(t, shards)
	cfg.Journal = jnl
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal: %v", err)
	}
	return buf.Bytes()
}

// TestJournalDeterministicAcrossShardCounts is the journal's analogue of the
// report determinism guard: all events are emitted from the driver goroutine
// behind the tick barrier, so the journal of a seeded run must be
// byte-identical whether one shard or four evaluated the predictions.
func TestJournalDeterministicAcrossShardCounts(t *testing.T) {
	a := journalRun(t, 1)
	b := journalRun(t, 4)
	if !bytes.Equal(a, b) {
		t.Fatalf("journal differs across shard counts:\n1 shard: %d bytes\n4 shards: %d bytes", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatalf("adaptive run journaled nothing")
	}

	// The adaptive scenario crosses every lifecycle the journal covers except
	// budget denial (16 instances never exhaust the default budget): crashes
	// feed the detector, the detector trips, a retrain publishes epoch 2, and
	// recovering instances swap onto it.
	want := map[obs.EventType]bool{
		obs.EventInstanceCrash:  true,
		obs.EventCrashRecovered: true,
		obs.EventDriftTrip:      true,
		obs.EventRetrainStart:   true,
		obs.EventRetrainPublish: true,
		obs.EventEpochSwap:      true,
	}
	var seq uint64
	for _, line := range bytes.Split(bytes.TrimSpace(a), []byte("\n")) {
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		seq++
		if e.Seq != seq {
			t.Fatalf("journal seq gap: got %d, want %d", e.Seq, seq)
		}
		delete(want, e.Type)
	}
	if len(want) != 0 {
		t.Fatalf("adaptive journal missing event types %v", want)
	}
}

// TestJournalCoversRejuvenationEvents drives a frozen fleet long enough for
// predictive rejuvenations and checks the alert → dispatch → complete chain
// shows up, instance-scoped and classed.
func TestJournalCoversRejuvenationEvents(t *testing.T) {
	var buf bytes.Buffer
	jnl := obs.NewJournal(&buf)
	rep, err := Run(Config{
		Instances: 16,
		Shards:    2,
		Duration:  2 * time.Hour,
		Seed:      5,
		Model:     testModel(t),
		Journal:   jnl,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatalf("journal: %v", err)
	}
	if rep.Rejuvenations == 0 {
		t.Fatalf("frozen scenario produced no rejuvenations; journal test needs a longer run")
	}
	var alerts, dispatches, completes int
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var e obs.Event
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		switch e.Type {
		case obs.EventRejuvAlert:
			alerts++
		case obs.EventRejuvDispatch:
			dispatches++
			if e.Instance < 0 || e.Class == "" || e.Epoch != 1 {
				t.Fatalf("dispatch event not instance-scoped: %+v", e)
			}
		case obs.EventRejuvComplete:
			completes++
		}
	}
	if dispatches != rep.Rejuvenations {
		t.Fatalf("journaled %d dispatches, report counts %d rejuvenations", dispatches, rep.Rejuvenations)
	}
	if alerts < dispatches {
		t.Fatalf("journaled %d alerts but %d dispatches", alerts, dispatches)
	}
	if completes == 0 {
		t.Fatalf("no rejuvenation ever completed in a 2h run")
	}
}

// TestFleetMetricsMatchReport checks the metric deltas of one run against its
// own report: the counters are cumulative across runs in a process, so the
// test compares before/after values rather than absolutes.
func TestFleetMetricsMatchReport(t *testing.T) {
	val := func(key string) float64 {
		v, _ := obs.Default.Value(key)
		return v
	}
	ckptsBefore := val("agingpred_fleet_checkpoints_total")
	deniedBefore := val("agingpred_fleet_budget_denied_total")
	crashBefore := make(map[string]float64)
	rejuvBefore := make(map[string]float64)
	for c := Class(0); c < numClasses; c++ {
		k := `{class="` + c.String() + `"}`
		crashBefore[c.String()] = val("agingpred_fleet_crashes_total" + k)
		rejuvBefore[c.String()] = val("agingpred_fleet_rejuvenations_total" + k)
	}

	rep, err := Run(Config{
		Instances: 16,
		Shards:    2,
		Duration:  time.Hour,
		Seed:      5,
		Model:     testModel(t),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if got := val("agingpred_fleet_checkpoints_total") - ckptsBefore; got != float64(rep.Checkpoints) {
		t.Errorf("checkpoint counter delta %v, report says %d", got, rep.Checkpoints)
	}
	if got := val("agingpred_fleet_budget_denied_total") - deniedBefore; got != float64(rep.BudgetDenied) {
		t.Errorf("budget-denied counter delta %v, report says %d", got, rep.BudgetDenied)
	}
	var crashes, rejuvs float64
	for c := Class(0); c < numClasses; c++ {
		k := `{class="` + c.String() + `"}`
		crashes += val("agingpred_fleet_crashes_total"+k) - crashBefore[c.String()]
		rejuvs += val("agingpred_fleet_rejuvenations_total"+k) - rejuvBefore[c.String()]
	}
	if crashes != float64(rep.CrashesSuffered) {
		t.Errorf("per-class crash counters sum to %v, report says %d", crashes, rep.CrashesSuffered)
	}
	if rejuvs != float64(rep.Rejuvenations) {
		t.Errorf("per-class rejuvenation counters sum to %v, report says %d", rejuvs, rep.Rejuvenations)
	}
	if v := val("agingpred_fleet_sim_time_seconds"); v != rep.DurationSec {
		t.Errorf("sim-time gauge %v after the run, want %v", v, rep.DurationSec)
	}
}
