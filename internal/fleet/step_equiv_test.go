package fleet

import (
	"testing"

	"agingpred/internal/monitor"
)

// forceGeneric returns a twin of spec's instance pinned to the generic
// reference stepper, regardless of the fault mix the kind selection would
// pick. Both twins are built from the same (seed, spec), so they share the
// same named RNG stream position and hoisted constants.
func forceGeneric(seed uint64, spec InstanceSpec) *instance {
	in := newInstance(seed, spec)
	in.kind = stepKindGeneric
	return in
}

// stepBoth advances both twins one tick and fails on the first divergence —
// crash decision, any checkpoint field, or any piece of internal state the
// following ticks depend on. Bit equality, not tolerance: the specialised
// steppers claim to run the very float operations the generic stepper runs.
func stepBoth(t *testing.T, label string, tick int, fast, ref *instance, tSec, dtSec float64) (crashed bool) {
	t.Helper()
	var cpFast, cpRef monitor.Checkpoint
	crashedFast := fast.step(tSec, dtSec, &cpFast)
	crashedRef := ref.step(tSec, dtSec, &cpRef)
	if crashedFast != crashedRef {
		t.Fatalf("%s tick %d: specialised crashed=%v, generic crashed=%v", label, tick, crashedFast, crashedRef)
	}
	if !crashedFast && cpFast != cpRef {
		vf, vr := cpFast.Vec(), cpRef.Vec()
		for i := range vf {
			if vf[i] != vr[i] {
				t.Fatalf("%s tick %d: checkpoint field %d differs: %v (specialised) vs %v (generic)",
					label, tick, i, vf[i], vr[i])
			}
		}
	}
	if fast.refTTFSec != ref.refTTFSec || fast.thr != ref.thr {
		t.Fatalf("%s tick %d: refTTFSec/thr diverged: %v/%v vs %v/%v",
			label, tick, fast.refTTFSec, fast.thr, ref.refTTFSec, ref.thr)
	}
	if fast.oldUsedMB != ref.oldUsedMB || fast.leakThreads != ref.leakThreads ||
		fast.leakConns != ref.leakConns || fast.diskMB != ref.diskMB {
		t.Fatalf("%s tick %d: aging state diverged: old %v/%v threads %v/%v conns %v/%v disk %v/%v",
			label, tick, fast.oldUsedMB, ref.oldUsedMB, fast.leakThreads, ref.leakThreads,
			fast.leakConns, ref.leakConns, fast.diskMB, ref.diskMB)
	}
	return crashedFast
}

// runTwins drives a specialised/generic twin pair through ticks of simulated
// time, resetting both on a crash (as the fleet controller does) so the suite
// also covers the post-reset trajectory on the same RNG stream.
func runTwins(t *testing.T, label string, seed uint64, spec InstanceSpec, ticks int) {
	t.Helper()
	fast := newInstance(seed, spec)
	ref := forceGeneric(seed, spec)
	if fast.kind == stepKindGeneric {
		// The mix has no specialised stepper; the twins are the same path and
		// the run would be vacuous, but keep it as a smoke test of the kind
		// selection fallback.
		t.Logf("%s: generic fallback (rates mem=%v thr=%v conn=%v)", label, fast.memPerHit, fast.thrRate, fast.connRate)
	}
	dt := monitor.DefaultInterval.Seconds()
	for tick := 1; tick <= ticks; tick++ {
		if stepBoth(t, label, tick, fast, ref, float64(tick)*dt, dt) {
			fast.reset()
			ref.reset()
		}
	}
}

// TestStepEquivalenceFleetPopulation pins the tentpole's bit-identity claim
// over a full heterogeneous fleet population: every specialised stepper must
// reproduce the generic reference stepper bit for bit — checkpoints, crash
// decisions and carried state — across several hours of simulated time,
// crashes and resets included.
func TestStepEquivalenceFleetPopulation(t *testing.T) {
	const ticks = 6 * 240 // 6 simulated hours at 15 s
	for _, seed := range []uint64{1, 5, 42} {
		specs := Specs(seed, 200)
		kinds := map[stepKind]int{}
		for _, spec := range specs {
			kinds[newInstance(seed, spec).kind]++
		}
		for k := stepKindHealthy; k <= stepKindMemThread; k++ {
			if kinds[k] == 0 {
				t.Fatalf("seed %d: no instance selected specialised stepper %d; population not representative", seed, k)
			}
		}
		for _, spec := range specs {
			runTwins(t, spec.Class.String(), seed, spec, ticks)
		}
	}
}

// TestStepEquivalenceTrainingSpecs runs the twin suite over the fixed
// training population too — the executions the shared model is fitted on must
// be exactly as bit-stable as the served fleet.
func TestStepEquivalenceTrainingSpecs(t *testing.T) {
	const ticks = 8 * 240
	for _, seed := range []uint64{1, 9} {
		for _, spec := range trainingSpecs() {
			runTwins(t, "train/"+spec.Class.String(), seed+1e6, spec, ticks)
		}
	}
}
