package fleet

import "agingpred/internal/obs"

// The fleet driver's metric series. Everything here is written from the
// driver goroutine (or the shard workers, for the per-shard batch-size
// histogram) and never read back into the simulation, so instrumentation
// cannot perturb the deterministic runs. Counters accumulate across runs in
// one process, like any long-lived Prometheus target; gauges track the most
// recent tick. Wall-clock time flows only into the tick-latency histogram —
// every other series carries simulated quantities.
var (
	mTicks = obs.Default.Counter("agingpred_fleet_ticks_total",
		"Completed fleet driver ticks (one checkpoint interval each).")
	mCheckpoints = obs.Default.Counter("agingpred_fleet_checkpoints_total",
		"Instance checkpoints stepped, staged and predicted by the fleet.")
	mBudgetDenied = obs.Default.Counter("agingpred_fleet_budget_denied_total",
		"Rejuvenation alerts deferred by the fleet because the budget was exhausted.")
	mSimTime = obs.Default.Gauge("agingpred_fleet_sim_time_seconds",
		"Simulated time of the most recently completed fleet tick.")
	mInstancesDown = obs.Default.Gauge("agingpred_fleet_instances_down",
		"Instances down (rejuvenating or crash-recovering) at the end of the last tick.")
	mQueueDepth = obs.Default.Gauge("agingpred_fleet_queue_depth",
		"Checkpoints staged for the shard workers in the last tick (the tick's dispatch queue).")
	mTickLatency = obs.Default.Histogram("agingpred_fleet_tick_latency_seconds",
		"Wall-clock latency of one fleet tick: stepping, batch prediction and the control pass.",
		obs.ExpBuckets(1e-5, 4, 12))
	mBatchSize = obs.Default.Histogram("agingpred_fleet_shard_batch_size",
		"Rows per shard-tick model batch handed to PredictBatch.",
		obs.ExpBuckets(1, 4, 10))
)

// Per-class outcome counters, one labelled series per instance class,
// resolved once at init and indexed by Class on the driver's crash and
// rejuvenation paths.
var (
	mClassCrashes [numClasses]*obs.Counter
	mClassRejuvs  [numClasses]*obs.Counter
)

func init() {
	for c := Class(0); c < numClasses; c++ {
		label := obs.Label{Key: "class", Value: c.String()}
		mClassCrashes[c] = obs.Default.Counter("agingpred_fleet_crashes_total",
			"Instance crashes suffered by the fleet, by instance class.", label)
		mClassRejuvs[c] = obs.Default.Counter("agingpred_fleet_rejuvenations_total",
			"Controlled rejuvenations started by the fleet, by instance class.", label)
	}
}
