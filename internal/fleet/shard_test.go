package fleet

import (
	"bytes"
	"testing"

	"agingpred/internal/core"
	"agingpred/internal/monitor"
	"agingpred/internal/rejuv"
)

// swapObserver is a test observer whose session can be repointed between
// ticks, standing in for an adaptive stream adopting a new model epoch at its
// reset boundary.
type swapObserver struct{ s *core.Session }

func (o *swapObserver) Session() *core.Session                      { return o.s }
func (o *swapObserver) Record(*monitor.Checkpoint, core.Prediction) {}

// cloneModel round-trips the model through its persistence encoding, yielding
// a distinct *core.Model identical in behaviour — the cheapest way to mint
// "new epochs" without retraining.
func cloneModel(t *testing.T, m *core.Model) *core.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	clone, err := core.DecodeModel(&buf)
	if err != nil {
		t.Fatalf("DecodeModel: %v", err)
	}
	if clone == m {
		t.Fatal("DecodeModel returned the same pointer")
	}
	return clone
}

// healthySpecs builds n fault-free specs: the eviction test needs instances
// that step forever without crashing.
func healthySpecs(n int) []InstanceSpec {
	specs := make([]InstanceSpec, n)
	for i := range specs {
		specs[i] = InstanceSpec{ID: i, Class: ClassHealthy, EBs: 100,
			AmpFrac: 0.1, PeriodSec: 3600}
	}
	return specs
}

// tickPool drives one pool tick inline (serial mode flushes on the caller's
// goroutine).
func tickPool(p *pool, tick int) {
	dt := monitor.DefaultInterval.Seconds()
	p.tSec, p.dtSec = float64(tick)*dt, dt
	p.flush(nil)
	p.wait()
}

// TestModelBatchEviction drives a single-shard pool through several model
// "epoch swaps" and checks the per-model batch list never accumulates retired
// epochs: a batch whose model went idle is dropped the first tick no session
// of the shard serves it any more — unless a down instance still holds a
// session on the old epoch, in which case it must be retained until that
// instance moves on.
func TestModelBatchEviction(t *testing.T) {
	base := testModel(t)
	const n = 4
	specs := healthySpecs(n)
	instances := make([]*instance, n)
	observers := make([]observer, n)
	swaps := make([]*swapObserver, n)
	for i, spec := range specs {
		instances[i] = newInstance(1, spec)
		swaps[i] = &swapObserver{base.NewSession()}
		observers[i] = swaps[i]
	}
	p := newPool(1, observers, instances, true)
	defer p.close()

	tick := 1
	tickPool(p, tick)
	if len(p.batches[0]) != 1 || p.batches[0][0].m != base {
		t.Fatalf("after the first tick, want exactly one batch for the base model, got %d", len(p.batches[0]))
	}

	// Several epoch swaps: every instance adopts the next epoch, the old
	// epoch's batch must be gone by the end of the next tick.
	current := base
	for epoch := 2; epoch <= 5; epoch++ {
		next := cloneModel(t, base)
		for _, o := range swaps {
			o.s = next.NewSession()
		}
		tick++
		tickPool(p, tick)
		batches := p.batches[0]
		if len(batches) != 1 {
			t.Fatalf("epoch %d: %d batches retained, want 1 (retired epochs must be evicted)", epoch, len(batches))
		}
		if batches[0].m != next {
			t.Fatalf("epoch %d: surviving batch serves the wrong model", epoch)
		}
		if batches[0].m == current {
			t.Fatalf("epoch %d: batch still on the retired epoch", epoch)
		}
		current = next
	}

	// Retention case: instance 0 stays on the current epoch but goes down;
	// everyone else moves to a new epoch. The old epoch's batch idles (nothing
	// staged) but must survive while the down instance's session still serves
	// it — the instance resumes on that model if no reset intervenes.
	next := cloneModel(t, base)
	for _, o := range swaps[1:] {
		o.s = next.NewSession()
	}
	p.down[0] = true
	tick++
	tickPool(p, tick)
	if got := len(p.batches[0]); got != 2 {
		t.Fatalf("down instance on a retired epoch: %d batches, want 2 (old epoch retained)", got)
	}

	// The down instance comes back and adopts the new epoch at reset: the old
	// batch loses its last holdout and is evicted.
	p.down[0] = false
	swaps[0].s = next.NewSession()
	tick++
	tickPool(p, tick)
	if got := len(p.batches[0]); got != 1 {
		t.Fatalf("after the holdout moved on: %d batches, want 1", got)
	}
	if p.batches[0][0].m != next {
		t.Fatal("surviving batch serves the wrong model")
	}
}

// TestTickZeroAllocs pins the hot-path allocation budget of the tentpole: in
// steady state a pool tick — step every instance, stage features, batch
// predict, record results — allocates nothing, and neither does an idle
// controller advance. Uses a mixed population (every class present) so all
// specialised steppers and the staging/predict path are exercised.
func TestTickZeroAllocs(t *testing.T) {
	model := testModel(t)
	specs := Specs(3, 32)
	n := len(specs)
	instances := make([]*instance, n)
	observers := make([]observer, n)
	for i, spec := range specs {
		instances[i] = newInstance(3, spec)
		observers[i] = sessionObserver{model.NewSession()}
	}
	p := newPool(2, observers, instances, true)
	defer p.close()

	// Warm up: grow the batches and feature buffers to their steady-state
	// capacity, and get every sliding window past its fill phase. Crashes are
	// reset inline (no controller here) so instances keep serving.
	tick := 0
	warm := func(ticks int) {
		for i := 0; i < ticks; i++ {
			tick++
			tickPool(p, tick)
			for id, in := range instances {
				if p.results[id].kind == resCrashed {
					in.reset()
					observers[id].Session().Reset()
				}
			}
		}
	}
	warm(64)

	allocs := testing.AllocsPerRun(50, func() {
		tick++
		tickPool(p, tick)
	})
	if allocs != 0 {
		t.Fatalf("steady-state pool tick allocates %.1f times, want 0", allocs)
	}

	// An idle controller advance (no completions due) is on the same per-tick
	// path and must be allocation-free too.
	ctrl, err := rejuv.NewController(4)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Crash(0, 1, 600)
	allocs = testing.AllocsPerRun(50, func() {
		ctrl.AdvanceDetailed(2) // long before the 600 s downtime completes
	})
	if allocs != 0 {
		t.Fatalf("idle controller advance allocates %.1f times, want 0", allocs)
	}
}
