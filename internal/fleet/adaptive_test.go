package fleet

import (
	"bytes"
	"testing"
	"time"

	"agingpred/internal/adapt"
	"agingpred/internal/features"
	"agingpred/internal/obs"
)

// adaptiveTestConfig builds a small fleet whose drift detector is pinned so
// sensitive (1 s baseline) that the first resolved crash trips it — the
// cheapest deterministic way to force the whole adaptive path (trigger,
// background retrain, epoch publish, epoch adoption at reset) inside a short
// simulated window.
func adaptiveTestConfig(t testing.TB, shards int) Config {
	t.Helper()
	return Config{
		Instances: 16,
		Shards:    shards,
		Duration:  2 * time.Hour,
		Seed:      5,
		Model:     testModel(t),
		Adaptive:  true,
		Adapt: adapt.Config{
			Detector:        adapt.DetectorConfig{BaselineSec: 1, Hysteresis: 1, MinBaselineSec: 1},
			MaxBufferedRuns: 4, // bound the background retrain's cost
		},
		RetrainLatency: 30 * time.Minute,
	}
}

// TestAdaptiveFleetSwapsEpochs drives a fleet across at least one model-epoch
// swap: drift trips on the first resolved crash, a background retrain
// publishes epoch 2 exactly RetrainLatency later, and recovering instances
// adopt it at their reset boundary. Run under -race this is the epoch-swap
// concurrency guard: shard workers keep observing lock-free while the
// background worker trains and the driver swaps the atomic epoch pointer.
func TestAdaptiveFleetSwapsEpochs(t *testing.T) {
	rep, err := Run(adaptiveTestConfig(t, 4))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !rep.Adaptive {
		t.Fatalf("report not marked adaptive")
	}
	if rep.Retrains < 1 {
		t.Fatalf("no retrains over %d crashes with a 1 s drift baseline:\n%s", rep.CrashesSuffered, rep)
	}
	if rep.DriftTrips < rep.Retrains {
		t.Fatalf("%d retrains from %d drift trips", rep.Retrains, rep.DriftTrips)
	}
	if len(rep.Epochs) != rep.Retrains+1 {
		t.Fatalf("%d epoch rows for %d retrains", len(rep.Epochs), rep.Retrains)
	}
	var epochCkpts int64
	for i, e := range rep.Epochs {
		if e.Epoch != i+1 {
			t.Fatalf("epoch rows out of order: %+v", rep.Epochs)
		}
		if i == 0 && (e.PublishedAtSec != 0 || e.TrainedRuns != 0) {
			t.Fatalf("initial epoch claims a publication: %+v", e)
		}
		if i > 0 && (e.PublishedAtSec <= 0 || e.TrainedRuns == 0 || e.FreshRuns == 0) {
			t.Fatalf("published epoch missing provenance: %+v", e)
		}
		epochCkpts += e.Checkpoints
	}
	if epochCkpts != rep.Checkpoints {
		t.Fatalf("per-epoch checkpoints %d do not add up to the fleet total %d", epochCkpts, rep.Checkpoints)
	}
	// Later epochs must actually have served: the swap is not just recorded,
	// instances adopted the new model.
	if last := rep.Epochs[len(rep.Epochs)-1]; last.Checkpoints == 0 && rep.Retrains > 0 {
		// The very last epoch may publish near the end of the run; at least
		// one post-initial epoch must have served checkpoints.
		served := false
		for _, e := range rep.Epochs[1:] {
			if e.Checkpoints > 0 {
				served = true
			}
		}
		if !served {
			t.Fatalf("no post-swap epoch ever served a checkpoint:\n%s", rep)
		}
	}
	if got := rep.String(); !bytes.Contains([]byte(got), []byte("adaptive serving")) {
		t.Fatalf("String() lost the adaptive block:\n%s", got)
	}
}

// TestAdaptiveFleetDeterministicAcrossShardCounts extends the fleet's core
// determinism guarantee to adaptive serving over the batched prediction
// path: adaptive streams are staged into per-model shard batches (one
// core.Batch per live epoch per shard), the drift trajectory, the retrain
// schedule and the per-epoch stats are pure functions of the seed, and the
// JSON report stays byte-identical across shard counts even though the
// retrains themselves run on background goroutines.
func TestAdaptiveFleetDeterministicAcrossShardCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three adaptive fleets, each retraining in the background")
	}
	run := func(shards int) []byte {
		rep, err := Run(adaptiveTestConfig(t, shards))
		if err != nil {
			t.Fatalf("Run with %d shards: %v", shards, err)
		}
		if rep.Retrains == 0 {
			t.Fatalf("determinism test run swapped no epochs; it would vacuously pass")
		}
		rep.Shards = 0 // the echoed shard count is the only allowed difference
		js, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return js
	}
	one := run(1)
	again := run(1)
	four := run(4)
	if !bytes.Equal(one, again) {
		t.Fatalf("two identical adaptive runs differ:\n%s\nvs\n%s", one, again)
	}
	if !bytes.Equal(one, four) {
		t.Fatalf("1-shard and 4-shard adaptive runs differ:\n%s\nvs\n%s", one, four)
	}
}

// TestAdaptiveSerialParallelEquivalence diffs adaptive serving across the
// parallel one-barrier engine and the serial-stepping reference path,
// report and journal both: epoch swaps land at reset boundaries inside the
// shard workers' tick, and the split must not move a single event. Under
// -race this doubles as the step-in-worker epoch-swap concurrency guard —
// shard workers step and predict while the background worker retrains and
// the driver swaps the epoch pointer.
func TestAdaptiveSerialParallelEquivalence(t *testing.T) {
	run := func(serial bool) (report, journal []byte) {
		var buf bytes.Buffer
		jnl := obs.NewJournal(&buf)
		cfg := adaptiveTestConfig(t, 3)
		cfg.Journal = jnl
		cfg.serialStep = serial
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run (serial=%v): %v", serial, err)
		}
		if err := jnl.Close(); err != nil {
			t.Fatalf("journal close: %v", err)
		}
		if rep.Retrains == 0 {
			t.Fatalf("no epoch swaps; the equivalence check would be vacuous")
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return js, buf.Bytes()
	}
	parRep, parJnl := run(false)
	serRep, serJnl := run(true)
	if !bytes.Equal(parRep, serRep) {
		t.Errorf("adaptive parallel and serial reports differ:\n%s\nvs\n%s", parRep, serRep)
	}
	if !bytes.Equal(parJnl, serJnl) {
		t.Errorf("adaptive parallel and serial journals differ:\n%s\nvs\n%s", parJnl, serJnl)
	}
}

// TestAdaptiveConfigValidation pins the unsupported combination.
func TestAdaptiveConfigValidation(t *testing.T) {
	connSchema, err := features.LookupSchema(features.FullConnSchemaName)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{
		Instances:    8,
		Duration:     time.Hour,
		Adaptive:     true,
		ClassSchemas: map[Class]*features.Schema{ClassConnLeak: connSchema},
	})
	if err == nil {
		t.Fatalf("Adaptive + ClassSchemas accepted")
	}
}
