// Package fleet is the fleet-scale serving layer on top of the single-server
// aging predictor: it simulates N application-server instances with
// heterogeneous leak profiles, workloads and phase offsets (all drawn
// deterministically from one seed), streams every instance's 15-second
// checkpoints through sharded predictor workers, and closes the monitor →
// predict → rejuvenate loop with a fleet-level controller that acts on the
// predicted time to failure under a concurrency-capped rejuvenation budget.
//
// The paper validates its adaptive M5P predictor against one three-tier
// testbed instance; this package is the layer that turns that single
// predictor into an online prediction service over thousands of concurrent
// instances. The architecture:
//
//	  ┌── driver (one tick = one checkpoint interval) ──────────────┐
//	  │ publish tick clock, one wake-up per shard                   │
//	  └──┬──────────────────────────────────────────────────────────┘
//	     │ consistent instance→shard hash (static ownership)
//	┌────▼────┐   ┌─────────┐        ┌─────────┐  step owned instances,
//	│ shard 0 │   │ shard 1 │  ...   │ shard S │  batch extraction +
//	└────┬────┘   └────┬────┘        └────┬────┘  PredictBatch sweep,
//	     └─────────────┴── tick barrier ──┘       per-instance results
//	  driver merge (instance-ID order): report/journal fold, then
//	  controller: per-instance predictive policies → budgeted
//	  rejuvenations, crash handling, fleet aggregates
//
// Every instance owns a Session of one shared immutable core.Model (train —
// or load — once, fan out per-stream sessions), and each instance's
// simulator state and session are touched only by its instance's shard: a
// tick is one barrier — the shard workers step their own instances, extract
// features, predict in batch and record, then the driver folds the
// per-instance outcomes. Each instance draws from its own named RNG stream,
// so its trajectory is independent of which shard steps it; all
// cross-instance accounting happens on the driver goroutine in instance-ID
// order after the tick barrier. The whole run — including the -json summary
// and the event journal — is therefore a pure function of (seed, instances,
// duration): byte-identical across repetitions and shard counts apart from
// the echoed "shards" field of the report.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"agingpred/internal/adapt"
	"agingpred/internal/core"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/monitor"
	"agingpred/internal/obs"
	"agingpred/internal/rejuv"
)

// Config describes one fleet run. The zero value is not runnable; Instances
// and Duration are required.
type Config struct {
	// Instances is the fleet size. Required.
	Instances int
	// Shards is the number of predictor workers (0 = GOMAXPROCS). Shard
	// count affects wall-clock speed only, never the results.
	Shards int
	// Duration is the simulated time to serve. Required.
	Duration time.Duration
	// Seed makes the whole run reproducible.
	Seed uint64
	// CheckpointInterval is the monitoring interval (0 = 15 s).
	CheckpointInterval time.Duration
	// TTFThreshold is the predicted time to failure below which an instance
	// raises a rejuvenation alert (0 = 10 min).
	TTFThreshold time.Duration
	// Confirmations is how many consecutive checkpoints must agree before
	// the alert fires (0 = 3).
	Confirmations int
	// RejuvenationBudget caps concurrent controlled restarts
	// (0 = max(1, Instances/10)).
	RejuvenationBudget int
	// RejuvenationDowntime is how long a controlled restart takes (0 = 2 min).
	RejuvenationDowntime time.Duration
	// CrashDowntime is how long recovering from a crash takes — detection,
	// restart, cache warm-up (0 = 10 min). Crashing must hurt more than
	// rejuvenating, or predicting would be pointless.
	CrashDowntime time.Duration
	// Model optionally supplies the shared trained model (each instance gets
	// its own Session of it; the model itself is immutable and shared). Nil
	// trains one with TrainModel, which costs a few wall-clock seconds. A
	// saved artifact loaded with agingpred.LoadModel plugs in here, so a
	// fleet can serve without retraining.
	Model *core.Model
	// Schema selects the feature schema of the shared model trained when
	// Model is nil (nil = the full Table 2 schema). Ignored when Model is
	// supplied.
	Schema *features.Schema
	// Adaptive turns on adaptive serving (internal/adapt): every instance's
	// predictions are scored against its eventually-observed crash time, a
	// drift detector watches the resolved error, and a background worker
	// retrains the shared model on the crashed runs the fleet itself
	// collected, publishing each new model as an epoch that instances adopt
	// at their next post-crash/post-rejuvenation reset. The run stays
	// deterministic: retraining input is fixed at the trigger tick and the
	// publish lands exactly RetrainLatency of simulated time later,
	// regardless of how long the background training really takes.
	Adaptive bool
	// Adapt tunes the adaptive loop (drift detector, training-buffer bound).
	// When its Seed is nil and the fleet trains its own base model, the
	// supervisor's buffer is seeded with that training series so a retrain
	// extends the coverage instead of forgetting it. Ignored unless Adaptive.
	Adapt adapt.Config
	// RetrainLatency is the simulated time between a drift-triggered retrain
	// starting and its model epoch being published (0 = 10 min). Ignored
	// unless Adaptive.
	RetrainLatency time.Duration
	// ClassSchemas chooses a feature schema per instance class: every
	// instance of a class with a non-nil entry gets a model trained on
	// that schema instead of the shared one (one extra training run per
	// distinct schema, deterministic in Seed). This is how the conn-leak
	// class gets the "full+conn" connection-speed derivatives while the rest
	// of the fleet stays on the paper's variable set. An override naming the
	// base model's own schema reuses the base; any other override trains on
	// the fleet's own TrainingSeries(Seed) — so combining a caller-supplied
	// Model (trained on other data) with overrides makes the per-class
	// comparison mix training sources.
	ClassSchemas map[Class]*features.Schema
	// Journal optionally receives the run's discrete lifecycle events
	// (crashes, rejuvenation alerts/dispatches/completions, drift trips,
	// retrains, epoch swaps) as JSONL records; nil means journaling off. All
	// events are emitted from the driver goroutine in tick order behind the
	// tick barrier, in instance-ID order within a tick, so the journal of a
	// seeded run is byte-identical across repetitions and shard counts.
	Journal *obs.Journal
	// Ctx optionally cancels the run between ticks.
	Ctx context.Context

	// serialStep selects the retained serial-stepping reference path: the
	// pool starts no workers and the driver runs every shard tick inline on
	// its own goroutine, in shard order. Identical results to the parallel
	// engine by construction (per-instance RNG streams, post-barrier
	// ID-order merge); the in-package determinism tests diff the two. A
	// test hook, deliberately unexported.
	serialStep bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = monitor.DefaultInterval
	}
	if c.TTFThreshold <= 0 {
		c.TTFThreshold = 10 * time.Minute
	}
	if c.Confirmations <= 0 {
		c.Confirmations = 3
	}
	if c.RejuvenationBudget <= 0 {
		// Default cap: at most a tenth of the fleet restarting at once.
		// Rejuvenations are short, so this clears alert waves quickly while
		// still bounding the capacity dip.
		c.RejuvenationBudget = c.Instances / 10
		if c.RejuvenationBudget < 1 {
			c.RejuvenationBudget = 1
		}
	}
	if c.RejuvenationDowntime <= 0 {
		c.RejuvenationDowntime = 2 * time.Minute
	}
	if c.CrashDowntime <= 0 {
		c.CrashDowntime = 10 * time.Minute
	}
	if c.RetrainLatency <= 0 {
		c.RetrainLatency = 10 * time.Minute
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Instances <= 0 {
		return fmt.Errorf("fleet: non-positive instance count %d", c.Instances)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("fleet: non-positive duration %v", c.Duration)
	}
	// core.Train/DecodeModel only hand out fully-built models, but a zero
	// &core.Model{} is still constructible; reject it here instead of
	// panicking on its nil schema deep inside the run.
	if c.Model != nil && c.Model.Schema() == nil {
		return fmt.Errorf("fleet: supplied model is not a trained model (zero core.Model)")
	}
	for class := range c.ClassSchemas {
		if class < 0 || class >= numClasses {
			return fmt.Errorf("fleet: ClassSchemas key %d is not a valid class (know %s)",
				int(class), strings.Join(ClassNames(), ", "))
		}
	}
	if c.Adaptive && len(c.ClassSchemas) > 0 {
		// Adaptive serving retrains and swaps the shared base model; the
		// per-class override models would stay frozen beside it and the
		// epoch accounting would be ambiguous. Support one axis at a time.
		return fmt.Errorf("fleet: Adaptive cannot be combined with ClassSchemas (the per-class override models would not adapt)")
	}
	return nil
}

// ClassReport aggregates one instance class of the fleet.
type ClassReport struct {
	// Class is the aging-fault bucket ("healthy", "mem-leak", ...).
	Class string `json:"class"`
	// Schema names the feature schema the class's predictors ran on.
	Schema string `json:"schema"`
	// Instances is how many fleet members drew this class.
	Instances int `json:"instances"`
	// Checkpoints counts the class's processed (and predicted) stream.
	Checkpoints int64 `json:"checkpoints"`
	// Crashes and Rejuvenations count the class's outcomes.
	Crashes       int `json:"crashes"`
	Rejuvenations int `json:"rejuvenations"`
	// MAESec, SMAESec, PreMAESec and PostMAESec are the paper's accuracy
	// metrics of the on-line predictions against the analytic reference TTF
	// (current leak rates frozen, as in experiment 4.2).
	MAESec     float64 `json:"mae_sec"`
	SMAESec    float64 `json:"smae_sec"`
	PreMAESec  float64 `json:"pre_mae_sec"`
	PostMAESec float64 `json:"post_mae_sec"`
}

// EpochReport aggregates one model epoch of an adaptive fleet run: when it
// was published, what it was trained on, and how the predictions made under
// it scored against the frozen-rate reference TTF.
type EpochReport struct {
	// Epoch is the epoch sequence number (1 = the initial model).
	Epoch int `json:"epoch"`
	// PublishedAtSec is the simulated time the epoch went live (0 for the
	// initial epoch, which serves from the start).
	PublishedAtSec float64 `json:"published_at_sec"`
	// TrainedRuns is how many buffered labeled runs the epoch was trained on
	// (0 for the initial epoch); FreshRuns how many of those the fleet
	// collected on-line since the previous epoch.
	TrainedRuns int `json:"trained_runs"`
	FreshRuns   int `json:"fresh_runs"`
	// Checkpoints counts the predictions served under this epoch; MAESec is
	// their mean absolute error against the reference TTF.
	Checkpoints int64   `json:"checkpoints"`
	MAESec      float64 `json:"mae_sec"`
}

// Report is the outcome of one fleet run. It contains no wall-clock values:
// the same (seed, instances, duration) produces byte-identical JSON — and
// changing only the shard count changes nothing but the echoed Shards field
// — which the regression tests rely on.
type Report struct {
	Instances   int     `json:"instances"`
	Shards      int     `json:"shards"`
	Seed        uint64  `json:"seed"`
	DurationSec float64 `json:"duration_sec"`
	IntervalSec float64 `json:"interval_sec"`
	// Model describes the shared predictor.
	Model string `json:"model"`
	// Checkpoints is the total number of instance-checkpoints predicted.
	Checkpoints int64 `json:"checkpoints"`
	// Rejuvenations counts the controlled restarts; CrashesAvoided those
	// whose instance was genuinely on a crash trajectory (finite reference
	// TTF), FalseAlarms the rest.
	Rejuvenations  int `json:"rejuvenations"`
	CrashesAvoided int `json:"crashes_avoided"`
	FalseAlarms    int `json:"false_alarms"`
	// CrashesSuffered counts the instances that died before the controller
	// acted.
	CrashesSuffered int `json:"crashes_suffered"`
	// BudgetDenied counts alerts deferred because the rejuvenation budget
	// was exhausted; MaxConcurrentRejuvenations is the observed peak (never
	// above RejuvenationBudget).
	BudgetDenied               int64 `json:"budget_denied"`
	RejuvenationBudget         int   `json:"rejuvenation_budget"`
	MaxConcurrentRejuvenations int   `json:"max_concurrent_rejuvenations"`
	// DowntimeSec is total instance-seconds spent down; Availability is
	// 1 − downtime/(instances·duration).
	DowntimeSec  float64 `json:"downtime_sec"`
	Availability float64 `json:"availability"`
	// ServedRequests and LostRequests total the fleet's traffic; requests
	// offered while an instance is down are lost.
	ServedRequests float64 `json:"served_requests"`
	LostRequests   float64 `json:"lost_requests"`
	// Classes breaks the fleet down per instance class, in Class order.
	Classes []ClassReport `json:"classes"`
	// Adaptive says whether the run served adaptively; the remaining fields
	// are only set when it did. DriftTrips counts drift-detector trips,
	// Retrains the published epochs beyond the initial one, and Epochs the
	// per-epoch breakdown in publication order.
	Adaptive   bool          `json:"adaptive,omitempty"`
	DriftTrips int           `json:"drift_trips,omitempty"`
	Retrains   int           `json:"retrains,omitempty"`
	Epochs     []EpochReport `json:"epochs,omitempty"`
}

// JSON renders the report as deterministic, machine-readable JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the report for humans.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d instances, %d shards, %s simulated, seed %d\n",
		r.Instances, r.Shards, time.Duration(r.DurationSec*float64(time.Second)), r.Seed)
	fmt.Fprintf(&b, "  model: %s\n", r.Model)
	fmt.Fprintf(&b, "  checkpoints predicted: %d\n", r.Checkpoints)
	fmt.Fprintf(&b, "  rejuvenations: %d (%d crashes avoided, %d false alarms; budget %d, peak %d concurrent, %d alerts deferred)\n",
		r.Rejuvenations, r.CrashesAvoided, r.FalseAlarms, r.RejuvenationBudget, r.MaxConcurrentRejuvenations, r.BudgetDenied)
	fmt.Fprintf(&b, "  crashes suffered: %d\n", r.CrashesSuffered)
	fmt.Fprintf(&b, "  downtime: %s instance-time, availability %.4f%%\n",
		evalx.FormatDuration(r.DowntimeSec), 100*r.Availability)
	lostPct := 0.0
	if offered := r.ServedRequests + r.LostRequests; offered > 0 {
		lostPct = 100 * r.LostRequests / offered
	}
	fmt.Fprintf(&b, "  requests: %.0f served, %.0f lost (%.3f%%)\n",
		r.ServedRequests, r.LostRequests, lostPct)
	fmt.Fprintf(&b, "  %-12s %-10s %5s %9s %8s %6s %10s %10s %10s %10s\n",
		"class", "schema", "inst", "ckpts", "crashes", "rejuv", "MAE", "S-MAE", "PRE-MAE", "POST-MAE")
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "  %-12s %-10s %5d %9d %8d %6d %10s %10s %10s %10s\n",
			c.Class, c.Schema, c.Instances, c.Checkpoints, c.Crashes, c.Rejuvenations,
			evalx.FormatDuration(c.MAESec), evalx.FormatDuration(c.SMAESec),
			evalx.FormatDuration(c.PreMAESec), evalx.FormatDuration(c.PostMAESec))
	}
	if r.Adaptive {
		fmt.Fprintf(&b, "  adaptive serving: %d drift trips, %d retrains\n", r.DriftTrips, r.Retrains)
		fmt.Fprintf(&b, "  %-6s %12s %12s %9s %10s\n", "epoch", "published", "trained-on", "ckpts", "MAE")
		for _, e := range r.Epochs {
			published := "start"
			if e.PublishedAtSec > 0 {
				published = evalx.FormatDuration(e.PublishedAtSec)
			}
			trained := "off-line"
			if e.TrainedRuns > 0 {
				trained = fmt.Sprintf("%d runs", e.TrainedRuns)
			}
			fmt.Fprintf(&b, "  %-6d %12s %12s %9d %10s\n",
				e.Epoch, published, trained, e.Checkpoints, evalx.FormatDuration(e.MAESec))
		}
	}
	return b.String()
}

// classStats accumulates accuracy sums online so the run never has to retain
// per-prediction slices (a simulated day over 1000 instances is millions of
// predictions).
type classStats struct {
	instances     int
	checkpoints   int64
	crashes       int
	rejuvenations int

	absSum, softSum float64
	n               int64
	preSum, postSum float64
	preN, postN     int64
}

// postWindowSec hoists the PRE/POST boundary out of the per-checkpoint
// accuracy accounting (Duration.Seconds costs two integer divisions).
var postWindowSec = evalx.DefaultPostWindow.Seconds()

// observe is evalx's AbsError/SoftAbsError accounting inlined for the
// per-checkpoint hot path; the sums it produces are bit-identical to the
// original Prediction-based formulation.
func (s *classStats) observe(refSec, predSec float64) {
	err := math.Abs(refSec - predSec)
	s.absSum += err
	s.n++
	if err > evalx.DefaultSecurityMargin*math.Abs(refSec) {
		s.softSum += err
	}
	if refSec <= postWindowSec {
		s.postSum += err
		s.postN++
	} else {
		s.preSum += err
		s.preN++
	}
}

func (s *classStats) report(class Class, schema string) ClassReport {
	rep := ClassReport{
		Class:         class.String(),
		Schema:        schema,
		Instances:     s.instances,
		Checkpoints:   s.checkpoints,
		Crashes:       s.crashes,
		Rejuvenations: s.rejuvenations,
	}
	if s.n > 0 {
		rep.MAESec = s.absSum / float64(s.n)
		rep.SMAESec = s.softSum / float64(s.n)
	}
	if s.preN > 0 {
		rep.PreMAESec = s.preSum / float64(s.preN)
	}
	if s.postN > 0 {
		rep.PostMAESec = s.postSum / float64(s.postN)
	}
	return rep
}

// Run executes one fleet serving run to completion and returns its report.
//
// The run proceeds in checkpoint-interval ticks, one barrier per tick: the
// shard workers step the instances they own (emitting each checkpoint into
// its pool slot), predict the live ones in batch, and report per-instance
// outcomes; after the barrier the driver — sequentially, in instance-ID
// order — folds the outcomes into the report and journal, feeds each
// prediction to the instance's predictive policy, and arbitrates the
// resulting alerts through the budgeted rejuvenation controller. Crashed
// instances recover after
// Config.CrashDowntime, rejuvenated ones after Config.RejuvenationDowntime;
// both come back with fresh aging state and a reset predictor window.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Resolve the per-class models: one shared base model plus one extra
	// training run per distinct override schema in ClassSchemas. Training
	// series are generated once and shared, and everything is deterministic
	// in the seed.
	var trainSeries []*monitor.Series
	trainOn := func(schema *features.Schema) (*core.Model, error) {
		if trainSeries == nil {
			var err error
			trainSeries, err = TrainingSeries(cfg.Seed)
			if err != nil {
				return nil, err
			}
		}
		return trainModelOn(trainSeries, schema)
	}

	base := cfg.Model
	model := "caller-supplied model"
	if base == nil {
		var err error
		base, err = trainOn(cfg.Schema)
		if err != nil {
			return nil, err
		}
		model = base.Report().String()
	}
	var classBase [numClasses]*core.Model
	for c := range classBase {
		classBase[c] = base
	}
	if len(cfg.ClassSchemas) > 0 {
		// Seed with the base model so an override naming the base's own
		// schema reuses it instead of retraining an identical model.
		bySchema := map[string]*core.Model{base.Schema().Name(): base}
		var overrides []string
		for c := Class(0); c < numClasses; c++ {
			schema := cfg.ClassSchemas[c]
			if schema == nil {
				continue
			}
			m, ok := bySchema[schema.Name()]
			if !ok {
				var err error
				m, err = trainOn(schema)
				if err != nil {
					return nil, fmt.Errorf("fleet: training %s model for class %s: %w", schema.Name(), c, err)
				}
				bySchema[schema.Name()] = m
			}
			classBase[c] = m
			overrides = append(overrides, fmt.Sprintf("%s=%s", c, schema.Name()))
		}
		if len(overrides) > 0 {
			model += "; class schemas: " + strings.Join(overrides, ", ")
		}
	}

	// Adaptive serving wraps the base model in a supervisor (seeded with the
	// fleet's own training series when the model was trained here, so a
	// retrain extends the coverage); frozen serving fans out plain sessions.
	var sup *adapt.Supervisor
	if cfg.Adaptive {
		acfg := cfg.Adapt
		if acfg.Seed == nil && trainSeries != nil {
			acfg.Seed = trainSeries
		}
		var err error
		sup, err = adapt.NewSupervisor(acfg, base)
		if err != nil {
			return nil, fmt.Errorf("fleet: %w", err)
		}
		model += "; adaptive"
		// A retrain triggered within the last RetrainLatency of the run (or
		// before a cancellation) never reaches its publish tick; join the
		// background goroutine instead of letting it outlive the run.
		defer sup.Discard()
	}

	specs := Specs(cfg.Seed, cfg.Instances)
	instances := make([]*instance, cfg.Instances)
	observers := make([]observer, cfg.Instances)
	var sessions []*core.Session
	var streams []*adapt.Stream
	if sup != nil {
		streams = make([]*adapt.Stream, cfg.Instances)
	} else {
		sessions = make([]*core.Session, cfg.Instances)
	}
	policies := make([]*rejuv.Predictive, cfg.Instances)
	for i, spec := range specs {
		instances[i] = newInstance(cfg.Seed, spec)
		if sup != nil {
			streams[i] = sup.NewStream(fmt.Sprintf("fleet/inst/%d", i))
			observers[i] = streams[i]
		} else {
			sessions[i] = classBase[spec.Class].NewSession()
			observers[i] = sessionObserver{sessions[i]}
		}
		policies[i] = &rejuv.Predictive{Threshold: cfg.TTFThreshold, Confirmations: cfg.Confirmations}
	}

	ctrl, err := rejuv.NewController(cfg.RejuvenationBudget)
	if err != nil {
		return nil, err
	}
	p := newPool(cfg.Shards, observers, instances, cfg.serialStep)
	defer p.close()

	dt := cfg.CheckpointInterval.Seconds()
	ticks := int(cfg.Duration / cfg.CheckpointInterval)
	if ticks == 0 {
		return nil, fmt.Errorf("fleet: duration %v is shorter than the %v checkpoint interval",
			cfg.Duration, cfg.CheckpointInterval)
	}
	rep := &Report{
		Instances: cfg.Instances,
		Shards:    cfg.Shards,
		Seed:      cfg.Seed,
		// Echo the simulated time actually served (whole ticks), so the
		// report's own downtime/availability arithmetic checks out even for
		// durations that are not a multiple of the interval.
		DurationSec:        float64(ticks) * dt,
		IntervalSec:        dt,
		Model:              model,
		RejuvenationBudget: cfg.RejuvenationBudget,
	}
	var stats [numClasses]classStats
	for _, spec := range specs {
		stats[spec.Class].instances++
	}
	horizon := monitor.InfiniteTTFSec * 0.999
	crashSec := cfg.CrashDowntime.Seconds()
	rejuvSec := cfg.RejuvenationDowntime.Seconds()

	// Adaptive bookkeeping: per-epoch accuracy aggregates (indexed by epoch
	// sequence − 1; entries appended as epochs publish) and the deterministic
	// publish schedule — a drift-triggered retrain starts at some tick and
	// its epoch goes live exactly retrainTicks later, however long the
	// background training really takes.
	type epochAgg struct {
		publishedAtSec float64
		trainedRuns    int
		freshRuns      int
		checkpoints    int64
		absSum         float64
	}
	var epochAggs []epochAgg
	publishAt := -1
	retrainTicks := int(cfg.RetrainLatency / cfg.CheckpointInterval)
	if retrainTicks < 1 {
		retrainTicks = 1
	}
	if sup != nil {
		epochAggs = append(epochAggs, epochAgg{}) // epoch 1 serves from the start
	}

	cancelled := func() error {
		if cfg.Ctx == nil {
			return nil
		}
		return cfg.Ctx.Err()
	}

	// Journaling helpers. The journal is driven only from this goroutine, in
	// tick order; epochOf labels instance-scoped events with the model epoch
	// the instance is serving (always 1 in a frozen fleet). pollDrift turns
	// the supervisor's tripped/cleared state changes into journal events —
	// polling instead of hooking keeps the detector a pure state machine, and
	// is deterministic because only driver-called paths mutate it.
	jnl := cfg.Journal
	epochOf := func(i int) int {
		if streams != nil {
			return streams[i].Epoch()
		}
		return 1
	}
	prevDrifted := false
	pollDrift := func(t float64) {
		if sup == nil || jnl == nil {
			return
		}
		d := sup.Drifted()
		if d == prevDrifted {
			return
		}
		prevDrifted = d
		s := sup.Stats()
		typ := obs.EventDriftClear
		if d {
			typ = obs.EventDriftTrip
		}
		jnl.Emit(obs.Event{Type: typ, TimeSec: t, Instance: -1, Epoch: s.Epoch,
			Detail: fmt.Sprintf("window MAE %.3fs vs baseline %.3fs", s.WindowMAESec, s.BaselineMAESec)})
	}

	for tick := 1; tick <= ticks; tick++ {
		tickStart := time.Now()
		t := float64(tick) * dt
		if err := cancelled(); err != nil {
			return nil, fmt.Errorf("fleet: run cancelled at simulated %s: %w", evalx.FormatDuration(t), err)
		}

		// One-barrier tick: publish the tick's clock and wake each shard
		// once. The workers step their own instances (down instances are
		// charged their lost traffic in the same pass), stage the live
		// checkpoints into per-model batches, predict, record, and report
		// per-instance outcomes into the result slots. A cancellation
		// mid-flush is reported right after the barrier.
		p.tSec, p.dtSec = t, dt
		p.flush(cfg.Ctx)
		p.wait()
		if err := cancelled(); err != nil {
			return nil, fmt.Errorf("fleet: run cancelled at simulated %s: %w", evalx.FormatDuration(t), err)
		}

		// Merge pass, in instance-ID order: fold the workers' outcomes into
		// the report, the controller and the journal. Walking IDs 0..N-1
		// keeps every float accumulation and every journal record in exactly
		// the serial driver's order whatever shard produced it, and crash
		// bookkeeping only ever touches the crashing instance's own state,
		// so deferring it past the barrier changes no bits. The tick's crash
		// events must all precede its rejuvenation-alert events (as they did
		// when the serial driver crashed instances while stepping), which is
		// why the control pass below is a second walk.
		for i, in := range instances {
			switch res := &p.results[i]; res.kind {
			case resDown:
				rep.DowntimeSec += dt
				rep.LostRequests += res.flow
			case resCrashed:
				ctrl.Crash(i, t, crashSec)
				p.down[i] = true
				rep.CrashesSuffered++
				stats[in.spec.Class].crashes++
				mClassCrashes[in.spec.Class].Inc()
				jnl.Emit(obs.Event{Type: obs.EventInstanceCrash, TimeSec: t,
					Instance: i, Class: in.spec.Class.String(), Epoch: epochOf(i)})
				if streams != nil {
					// The crash resolves every pending prediction label of
					// the stream and donates the observed run-to-crash
					// execution to the supervisor's training buffer.
					streams[i].ResolveCrash(t)
				}
				// The crash interval itself served nothing: its offered
				// traffic is lost and its time is downtime, on top of the
				// recovery the controller just scheduled.
				rep.DowntimeSec += dt
				rep.LostRequests += res.flow
			default: // resServed
				rep.ServedRequests += res.flow
				rep.Checkpoints++
				stats[in.spec.Class].checkpoints++
			}
		}

		// Control pass, in instance-ID order: accuracy accounting, then the
		// per-instance policy, then the fleet-level budget arbitration.
		for i, in := range instances {
			res := &p.results[i]
			if res.kind != resServed {
				continue
			}
			if res.err != nil {
				return nil, fmt.Errorf("fleet: predicting instance %d at simulated %s: %w",
					i, evalx.FormatDuration(t), res.err)
			}
			st := &stats[in.spec.Class]
			st.observe(in.refTTFSec, res.ttfSec)
			if streams != nil {
				ea := &epochAggs[streams[i].Epoch()-1]
				ea.checkpoints++
				if d := res.ttfSec - in.refTTFSec; d >= 0 {
					ea.absSum += d
				} else {
					ea.absSum -= d
				}
			}
			if !policies[i].Decide(t, res.ttfSec) {
				continue
			}
			jnl.Emit(obs.Event{Type: obs.EventRejuvAlert, TimeSec: t,
				Instance: i, Class: in.spec.Class.String(), Epoch: epochOf(i)})
			if !ctrl.Alert(i, t, rejuvSec) {
				// The instance is healthy (we just stepped it), so a denial
				// is the budget: the policy stays primed and will re-raise.
				rep.BudgetDenied++
				mBudgetDenied.Inc()
				jnl.Emit(obs.Event{Type: obs.EventRejuvDenied, TimeSec: t,
					Instance: i, Class: in.spec.Class.String(), Epoch: epochOf(i)})
				continue
			}
			p.down[i] = true
			rep.Rejuvenations++
			st.rejuvenations++
			mClassRejuvs[in.spec.Class].Inc()
			jnl.Emit(obs.Event{Type: obs.EventRejuvDispatch, TimeSec: t,
				Instance: i, Class: in.spec.Class.String(), Epoch: epochOf(i)})
			if in.refTTFSec < horizon {
				rep.CrashesAvoided++
			} else {
				rep.FalseAlarms++
			}
		}

		// Finished downtimes, at the end of the tick so every outage is
		// charged for each interval it overlaps (an instance released here
		// resumes serving on the next tick). The instance returns with a
		// fresh JVM, a fresh prediction window and a reset policy — and, in
		// an adaptive fleet, on the current model epoch: the reset boundary
		// is where a hot-swapped model reaches live serving.
		for _, comp := range ctrl.AdvanceDetailed(t) {
			id := comp.ID
			p.down[id] = false
			instances[id].reset()
			prevEpoch := 0
			if streams != nil {
				prevEpoch = streams[id].Epoch()
				streams[id].Reset()
			} else {
				sessions[id].Reset()
			}
			policies[id].Reset()
			typ := obs.EventRejuvComplete
			if comp.Was == rejuv.StateCrashed {
				typ = obs.EventCrashRecovered
			}
			class := instances[id].spec.Class.String()
			jnl.Emit(obs.Event{Type: typ, TimeSec: t,
				Instance: id, Class: class, Epoch: epochOf(id)})
			if streams != nil && streams[id].Epoch() != prevEpoch {
				// The reset boundary is where a hot-swapped model reaches live
				// serving; journal which instance moved to which epoch.
				jnl.Emit(obs.Event{Type: obs.EventEpochSwap, TimeSec: t,
					Instance: id, Class: class, Epoch: streams[id].Epoch(),
					Detail: fmt.Sprintf("from epoch %d", prevEpoch)})
			}
		}

		// Adaptive supervision, after the control pass so a tick's crashes
		// have already fed the detector and the buffer. Both the retrain
		// trigger and the publish tick are pure functions of the simulated
		// run, so the whole adaptive trajectory is deterministic; only the
		// background training work overlaps with the following ticks.
		if sup != nil {
			pollDrift(t)
			if publishAt < 0 && sup.StartRetrain() {
				publishAt = tick + retrainTicks
				if jnl != nil {
					s := sup.Stats()
					jnl.Emit(obs.Event{Type: obs.EventRetrainStart, TimeSec: t,
						Instance: -1, Epoch: s.Epoch,
						Detail: fmt.Sprintf("%d buffered runs", s.BufferedRuns)})
				}
			}
			if publishAt >= 0 && tick >= publishAt {
				publishAt = -1
				if sup.Publish() {
					cur := sup.Current()
					epochAggs = append(epochAggs, epochAgg{
						publishedAtSec: t,
						trainedRuns:    cur.TrainedRuns,
						freshRuns:      cur.FreshRuns,
					})
					jnl.Emit(obs.Event{Type: obs.EventRetrainPublish, TimeSec: t,
						Instance: -1, Epoch: cur.Seq,
						Detail: fmt.Sprintf("trained on %d runs (%d fresh)", cur.TrainedRuns, cur.FreshRuns)})
					// The publish rebaselines the detector, so the matching
					// drift_clear lands at this very tick, after the publish.
					pollDrift(t)
				} else if err := sup.Err(); err != nil {
					return nil, fmt.Errorf("fleet: %w", err)
				}
			}
		}

		// Tick bookkeeping for the exposition layer: everything here reflects
		// the simulated run (and is never read back), except the tick-latency
		// histogram, which is the one place wall-clock time flows into.
		staged := 0
		for _, n := range p.staged {
			staged += n
		}
		mTicks.Inc()
		mCheckpoints.Add(uint64(staged))
		mQueueDepth.Set(float64(staged))
		mSimTime.Set(t)
		mInstancesDown.Set(float64(ctrl.Down()))
		mTickLatency.Observe(time.Since(tickStart).Seconds())
	}

	rep.MaxConcurrentRejuvenations = ctrl.MaxInFlight()
	rep.Availability = 1
	if total := float64(cfg.Instances) * float64(ticks) * dt; total > 0 {
		rep.Availability = 1 - rep.DowntimeSec/total
	}
	for c := Class(0); c < numClasses; c++ {
		if stats[c].instances == 0 {
			continue
		}
		rep.Classes = append(rep.Classes, stats[c].report(c, classBase[c].Schema().Name()))
	}
	if sup != nil {
		s := sup.Stats()
		rep.Adaptive = true
		rep.DriftTrips = s.Trips
		rep.Retrains = s.Retrains
		for i, ea := range epochAggs {
			er := EpochReport{
				Epoch:          i + 1,
				PublishedAtSec: ea.publishedAtSec,
				TrainedRuns:    ea.trainedRuns,
				FreshRuns:      ea.freshRuns,
				Checkpoints:    ea.checkpoints,
			}
			if ea.checkpoints > 0 {
				er.MAESec = ea.absSum / float64(ea.checkpoints)
			}
			rep.Epochs = append(rep.Epochs, er)
		}
	}
	return rep, nil
}
