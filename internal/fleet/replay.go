package fleet

import "agingpred/internal/monitor"

// Replay steps one simulated instance's monitored checkpoint stream outside
// the fleet engine — the checkpoint source of the network load generator
// (cmd/agingload), which replays a Specs-drawn population over real sockets
// instead of in-process shards. The trajectory is the same pure function of
// (seed, spec, step sequence) the fleet computes: independent of siblings,
// reproducible from the seed.
type Replay struct {
	in   *instance
	dt   float64
	tick int
}

// NewReplay creates the replayed instance for a spec, on the same seeded
// per-instance random stream the fleet would use.
func NewReplay(seed uint64, spec InstanceSpec) *Replay {
	return &Replay{in: newInstance(seed, spec), dt: monitor.DefaultInterval.Seconds()}
}

// Spec returns the replayed instance's static description.
func (r *Replay) Spec() InstanceSpec { return r.in.spec }

// IntervalSec is the checkpoint interval, seconds of simulated time.
func (r *Replay) IntervalSec() float64 { return r.dt }

// TimeSec is the simulated time of the latest Step.
func (r *Replay) TimeSec() float64 { return float64(r.tick) * r.dt }

// Step advances one checkpoint interval and writes the monitored checkpoint
// into *cp, or reports that the instance crashed during the interval (*cp is
// left untouched). After a crash, Restart begins the recovered instance's
// next run.
func (r *Replay) Step(cp *monitor.Checkpoint) (crashed bool) {
	r.tick++
	return r.in.step(float64(r.tick)*r.dt, r.dt, cp)
}

// Restart clears the aging state, as the fleet's crash recovery (or a
// rejuvenation) does. The random stream keeps its position, exactly like a
// fleet instance's.
func (r *Replay) Restart() { r.in.reset() }
