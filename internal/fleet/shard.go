package fleet

import (
	"context"
	"sync"

	"agingpred/internal/core"
	"agingpred/internal/monitor"
)

// observer is what the prediction layer drives per instance: the underlying
// core.Session to stage into its shard's batch, plus a Record hook invoked
// with the issued prediction. A frozen fleet wraps plain core.Sessions
// (Record is a no-op); an adaptive fleet serves adapt.Streams, whose Record
// remembers the prediction for later label resolution. Either way the
// observer is touched only by its instance's shard worker.
type observer interface {
	Session() *core.Session
	Record(cp *monitor.Checkpoint, pred core.Prediction)
}

// sessionObserver adapts a plain frozen-model session to the observer
// interface; staging plus the (empty) Record is exactly Session.Observe.
type sessionObserver struct{ s *core.Session }

func (o sessionObserver) Session() *core.Session                      { return o.s }
func (o sessionObserver) Record(*monitor.Checkpoint, core.Prediction) {}

// obsResult is one worker's answer, written into the pool's results slot for
// the instance.
type obsResult struct {
	ttfSec float64
	err    error
}

// modelBatch is one shard worker's reusable prediction batch for one distinct
// model. A worker keeps one per model its instances serve — usually exactly
// one; a few under per-class schemas or adaptive epochs — found by linear
// scan, and holds on to retired epochs' batches (cheap, and a stream may come
// back from downtime still serving an old epoch).
type modelBatch struct {
	m   *core.Model
	b   *core.Batch
	ids []int // instance IDs staged this tick, in staging order
}

// pool is the sharded batch-prediction layer: every instance is consistently
// assigned to one shard (an FNV-1a hash of its ID), each shard is one worker
// goroutine, and each instance's session is touched only by its own shard —
// so no locks are needed around the sessions' mutable sliding-window state.
// The trained models behind the sessions are immutable and shared by all
// shards.
//
// The unit of dispatch is a whole shard tick, not a checkpoint: the driver
// stages every live instance's checkpoint into per-instance slots (stage),
// then wakes each worker once (flush). A worker runs its entire shard as
// core.Batch evaluations — feature rows staged back to back per model, the
// flattened regressor swept over the contiguous batch — writes one result
// slot per instance, and hits the tick barrier. One channel send and one
// WaitGroup count per shard per tick is all the synchronisation there is.
//
// Memory ordering: the flush sends publish the driver's checkpoint/ID writes
// to the workers, and the tick WaitGroup orders the workers' result and
// Record writes before the driver's reads in wait.
type pool struct {
	sessions []observer
	shardIdx []int                // static instance→shard assignment
	cps      []monitor.Checkpoint // per-instance checkpoint slot for the tick
	ids      [][]int              // per-shard instance IDs staged this tick
	results  []obsResult

	work    []chan struct{} // per-shard tick signal
	tick    sync.WaitGroup  // per-tick barrier: one count per signalled shard
	workers sync.WaitGroup  // worker lifetime, for close
}

// newPool precomputes the instance→shard map and starts one worker per
// shard. sessions[i] is instance i's private per-stream state; results has
// one slot per instance.
func newPool(shards int, sessions []observer) *pool {
	p := &pool{
		sessions: sessions,
		shardIdx: make([]int, len(sessions)),
		cps:      make([]monitor.Checkpoint, len(sessions)),
		ids:      make([][]int, shards),
		results:  make([]obsResult, len(sessions)),
		work:     make([]chan struct{}, shards),
	}
	counts := make([]int, shards)
	for id := range p.shardIdx {
		s := shardOf(id, shards)
		p.shardIdx[id] = s
		counts[s]++
	}
	for s := range p.work {
		p.ids[s] = make([]int, 0, counts[s])
		ch := make(chan struct{}, 1)
		p.work[s] = ch
		p.workers.Add(1)
		go p.worker(s, ch, counts[s])
	}
	return p
}

// worker serves one shard: on every tick signal it evaluates the shard's
// staged instances in batch, per distinct model, and records the results.
func (p *pool) worker(s int, ch <-chan struct{}, capacity int) {
	defer p.workers.Done()
	var batches []*modelBatch
	for range ch {
		for _, mb := range batches {
			mb.b.Reset()
			mb.ids = mb.ids[:0]
		}
		for _, id := range p.ids[s] {
			sess := p.sessions[id].Session()
			m := sess.Model()
			var mb *modelBatch
			for _, c := range batches {
				if c.m == m {
					mb = c
					break
				}
			}
			if mb == nil {
				mb = &modelBatch{m: m, b: m.NewBatch(capacity)}
				batches = append(batches, mb)
			}
			if err := mb.b.Stage(sess, &p.cps[id]); err != nil {
				p.results[id] = obsResult{err: err}
				continue
			}
			mb.ids = append(mb.ids, id)
		}
		for _, mb := range batches {
			if len(mb.ids) == 0 {
				continue
			}
			mBatchSize.Observe(float64(len(mb.ids)))
			preds, err := mb.b.Predict()
			if err != nil {
				for _, id := range mb.ids {
					p.results[id] = obsResult{err: err}
				}
				continue
			}
			for k, id := range mb.ids {
				pred := preds[k]
				p.sessions[id].Record(&p.cps[id], pred)
				p.results[id] = obsResult{ttfSec: pred.TTFSec}
			}
		}
		p.tick.Done()
	}
}

// shardOf is the consistent instance→shard assignment: a 64-bit FNV-1a hash
// of the instance ID. Stable across runs and independent of staging order.
func shardOf(id, shards int) int {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	x := uint64(id)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime
		x >>= 8
	}
	return int(h % uint64(shards))
}

// begin starts a new tick, emptying the per-shard staging lists. Call before
// the tick's first stage; the workers are parked between ticks, so the
// slices are safe to reuse.
func (p *pool) begin() {
	for s := range p.ids {
		p.ids[s] = p.ids[s][:0]
	}
}

// stage queues one instance for the current tick. The driver has already
// written the instance's checkpoint slot (p.cps[id]) in place — steppers
// write straight into it, so the 160-byte checkpoint is never copied.
// Purely driver-local — the workers are parked until flush.
func (p *pool) stage(id int) {
	p.ids[p.shardIdx[id]] = append(p.ids[p.shardIdx[id]], id)
}

// flush hands the staged tick to the workers, one signal per shard. It
// returns false if ctx is cancelled before every shard was signalled (the
// barrier stays consistent — call wait regardless); a nil ctx never cancels.
func (p *pool) flush(ctx context.Context) bool {
	for _, ch := range p.work {
		p.tick.Add(1)
		if ctx == nil {
			ch <- struct{}{}
			continue
		}
		select {
		case ch <- struct{}{}:
		case <-ctx.Done():
			p.tick.Done()
			return false
		}
	}
	return true
}

// wait blocks until every signalled shard has finished its tick.
func (p *pool) wait() { p.tick.Wait() }

// close shuts the tick channels down and waits for the workers to exit.
// Call only after wait (no tick in flight).
func (p *pool) close() {
	for _, ch := range p.work {
		close(ch)
	}
	p.workers.Wait()
}
