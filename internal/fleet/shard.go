package fleet

import (
	"context"
	"sync"

	"agingpred/internal/core"
	"agingpred/internal/monitor"
)

// observer is what a shard worker drives per instance: a per-stream
// prediction state whose Observe consumes one checkpoint. A frozen fleet
// serves plain core.Sessions; an adaptive fleet serves adapt.Streams, which
// additionally remember their predictions for label resolution. Either way
// the observer is touched only by its instance's shard.
type observer interface {
	Observe(cp monitor.Checkpoint) (core.Prediction, error)
}

// job asks a shard worker to run one instance's checkpoint through that
// instance's prediction session.
type job struct {
	id int
	cp monitor.Checkpoint
}

// obsResult is one worker's answer, written into the pool's results slot for
// the instance.
type obsResult struct {
	ttfSec float64
	err    error
}

// pool is the sharded prediction layer: every instance is consistently
// assigned to one shard (an FNV hash of its ID), each shard is one worker
// goroutine draining a bounded channel, and each instance's session is
// touched only by its own shard — so no locks are needed around the
// sessions' mutable sliding-window state. The trained Model behind the
// sessions is immutable and shared by all shards.
//
// The driver dispatches one tick's checkpoints (blocking on a full shard
// queue: natural backpressure), then waits on the tick barrier before
// reading results. Result slots are indexed by instance, each written by
// exactly one worker per tick, and the WaitGroup barrier orders those writes
// before the driver's reads.
type pool struct {
	shards   []chan job
	sessions []observer
	results  []obsResult

	tick    sync.WaitGroup // per-tick barrier
	workers sync.WaitGroup // worker lifetime, for close
}

// newPool starts one worker per shard. sessions[i] is instance i's private
// per-stream state; results has one slot per instance.
func newPool(shards, queue int, sessions []observer) *pool {
	p := &pool{
		shards:   make([]chan job, shards),
		sessions: sessions,
		results:  make([]obsResult, len(sessions)),
	}
	for s := range p.shards {
		ch := make(chan job, queue)
		p.shards[s] = ch
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			for jb := range ch {
				pred, err := p.sessions[jb.id].Observe(jb.cp)
				p.results[jb.id] = obsResult{ttfSec: pred.TTFSec, err: err}
				p.tick.Done()
			}
		}()
	}
	return p
}

// shardOf is the consistent instance→shard assignment: a 64-bit FNV-1a hash
// of the instance ID. Stable across runs and independent of dispatch order.
func (p *pool) shardOf(id int) int {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	x := uint64(id)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime
		x >>= 8
	}
	return int(h % uint64(len(p.shards)))
}

// dispatch queues one checkpoint on the instance's shard, blocking while the
// shard's queue is full (backpressure). It returns false without queueing if
// ctx is cancelled first; a nil ctx never cancels.
func (p *pool) dispatch(ctx context.Context, id int, cp monitor.Checkpoint) bool {
	p.tick.Add(1)
	ch := p.shards[p.shardOf(id)]
	if ctx == nil {
		ch <- job{id: id, cp: cp}
		return true
	}
	select {
	case ch <- job{id: id, cp: cp}:
		return true
	case <-ctx.Done():
		p.tick.Done()
		return false
	}
}

// wait blocks until every dispatched checkpoint of the tick is predicted.
func (p *pool) wait() { p.tick.Wait() }

// close shuts the shard channels down and waits for the workers to exit.
// Call only after wait (no in-flight jobs).
func (p *pool) close() {
	for _, ch := range p.shards {
		close(ch)
	}
	p.workers.Wait()
}
