package fleet

import (
	"context"
	"sync"

	"agingpred/internal/core"
	"agingpred/internal/monitor"
)

// observer is what the prediction layer drives per instance: the underlying
// core.Session to stage into its shard's batch, plus a Record hook invoked
// with the issued prediction. A frozen fleet wraps plain core.Sessions
// (Record is a no-op); an adaptive fleet serves adapt.Streams, whose Record
// remembers the prediction for later label resolution. Either way the
// observer is touched only by its instance's shard worker.
type observer interface {
	Session() *core.Session
	Record(cp *monitor.Checkpoint, pred core.Prediction)
}

// sessionObserver adapts a plain frozen-model session to the observer
// interface; staging plus the (empty) Record is exactly Session.Observe.
type sessionObserver struct{ s *core.Session }

func (o sessionObserver) Session() *core.Session                      { return o.s }
func (o sessionObserver) Record(*monitor.Checkpoint, core.Prediction) {}

// resultKind is the outcome a shard worker reports for one instance's tick.
type resultKind uint8

const (
	// resDown: the instance was down the whole interval; flow carries the
	// traffic its users kept offering (all lost).
	resDown resultKind = iota
	// resServed: the instance served the interval and was staged for
	// prediction; flow carries the requests it served, ttfSec/err the
	// prediction outcome.
	resServed
	// resCrashed: the instance ran a resource dry during the interval; flow
	// carries the offered (lost) traffic. The driver turns this into
	// controller/journal crash bookkeeping after the barrier.
	resCrashed
)

// obsResult is one worker's answer for one instance, written into the pool's
// result slot and merged by the driver after the tick barrier.
type obsResult struct {
	ttfSec float64
	flow   float64 // served requests (resServed) or lost requests (resDown/resCrashed)
	err    error
	kind   resultKind
}

// modelBatch is one shard worker's reusable prediction batch for one distinct
// model. A worker keeps one per model its instances currently serve — usually
// exactly one; a few under per-class schemas or adaptive epochs — found by
// linear scan. A batch whose model went idle this tick is evicted unless some
// session of the shard still serves that model (a down instance may come back
// from an outage still on a retired epoch); without the eviction a long
// adaptive run would scan every epoch it ever served, every instance, every
// tick.
type modelBatch struct {
	m   *core.Model
	b   *core.Batch
	ids []int // instance IDs staged this tick, in staging order
}

// pool is the sharded simulation-and-prediction engine: every instance is
// consistently assigned to one shard (an FNV-1a hash of its ID), each shard
// is one worker goroutine, and each instance's simulator state and session
// are touched only by its own shard — so no locks are needed around any
// per-instance mutable state.
//
// The unit of dispatch is a whole shard tick: the driver publishes the
// tick's clock (tSec/dtSec) and wakes each worker once (flush). A worker
// walks its shard's instances in ascending ID order, steps each live
// instance's simulator straight into the per-instance checkpoint slot,
// stages the survivors back to back into per-model core.Batch evaluations,
// sweeps the flattened regressors over the contiguous batches, records the
// predictions, writes one result slot per instance, and hits the tick
// barrier. One channel send and one WaitGroup count per shard per tick is
// all the synchronisation there is.
//
// Determinism: every instance draws from its own named RNG stream, so the
// trajectory each worker computes is independent of which shard steps it and
// of the order shards run in. All cross-instance state — report aggregates,
// controller, journal — is folded by the driver after the barrier in
// instance-ID order, which is exactly the retained serial reference order
// (serial mode below).
//
// Memory ordering: the flush sends publish the driver's tSec/dtSec and
// down-flag writes to the workers, and the tick WaitGroup orders the
// workers' result and Record writes before the driver's reads in wait.
type pool struct {
	sessions  []observer
	instances []*instance
	// down mirrors the controller's per-instance availability; only the
	// driver writes it (between barriers), workers read it at step time.
	down     []bool
	cps      []monitor.Checkpoint // per-instance checkpoint slot for the tick
	results  []obsResult
	shardIDs [][]int // static per-shard instance IDs, ascending
	batches  [][]*modelBatch
	staged   []int // per-shard count of staged instances this tick

	// tick parameters, written by the driver before flush.
	tSec, dtSec float64

	// serial selects the retained serial-stepping reference path: no worker
	// goroutines; flush runs every shard tick inline on the caller's
	// goroutine. Bit-identical to the parallel engine by construction — the
	// determinism tests diff the two.
	serial  bool
	work    []chan struct{} // per-shard tick signal
	tick    sync.WaitGroup  // per-tick barrier: one count per signalled shard
	workers sync.WaitGroup  // worker lifetime, for close
}

// newPool precomputes the static per-shard instance lists and starts one
// worker per shard (none in serial mode). sessions[i] is instance i's private
// per-stream state, instances[i] its private simulator state; results has one
// slot per instance.
func newPool(shards int, sessions []observer, instances []*instance, serial bool) *pool {
	p := &pool{
		sessions:  sessions,
		instances: instances,
		down:      make([]bool, len(sessions)),
		cps:       make([]monitor.Checkpoint, len(sessions)),
		results:   make([]obsResult, len(sessions)),
		shardIDs:  make([][]int, shards),
		batches:   make([][]*modelBatch, shards),
		staged:    make([]int, shards),
		serial:    serial,
	}
	// Ascending IDs per shard: the walk order within a shard never matters
	// for determinism (independent RNG streams), but a fixed order keeps the
	// batch layouts — and so the Record call pattern — reproducible.
	for id := range sessions {
		s := shardOf(id, shards)
		p.shardIDs[s] = append(p.shardIDs[s], id)
	}
	if serial {
		return p
	}
	p.work = make([]chan struct{}, shards)
	for s := range p.work {
		ch := make(chan struct{}, 1)
		p.work[s] = ch
		p.workers.Add(1)
		go p.worker(s, ch)
	}
	return p
}

// worker serves one shard: one full shard tick per signal, then the barrier.
func (p *pool) worker(s int, ch <-chan struct{}) {
	defer p.workers.Done()
	for range ch {
		p.shardTick(s)
		p.tick.Done()
	}
}

// shardTick runs one shard's whole tick: step every owned instance, stage
// the live ones per model, predict in batch, record, and report per-instance
// outcomes into the result slots. Touches only shard-owned state (plus the
// driver-published tick clock and down flags), so it is equally correct on a
// worker goroutine or inline in serial mode.
func (p *pool) shardTick(s int) {
	t, dt := p.tSec, p.dtSec
	batches := p.batches[s]
	for _, mb := range batches {
		mb.b.Reset()
		mb.ids = mb.ids[:0]
	}
	// Local slice headers: the step/Stage calls below take &cps[id], so
	// without these the compiler must conservatively reload every p field
	// after each call.
	instances, down, cps, results := p.instances, p.down, p.cps, p.results
	staged := 0
	for _, id := range p.shardIDs[s] {
		in := instances[id]
		if down[id] {
			// Down the whole interval: its users keep offering traffic that
			// is all lost; nothing is staged.
			results[id] = obsResult{kind: resDown, flow: in.expectedThroughput(t) * dt}
			continue
		}
		// Step straight into the instance's pool slot: the 160-byte
		// checkpoint is written once and never copied again.
		if in.step(t, dt, &cps[id]) {
			results[id] = obsResult{kind: resCrashed, flow: in.expectedThroughput(t) * dt}
			continue
		}
		sess := p.sessions[id].Session()
		m := sess.Model()
		var mb *modelBatch
		for _, c := range batches {
			if c.m == m {
				mb = c
				break
			}
		}
		if mb == nil {
			mb = &modelBatch{m: m, b: m.NewBatch(len(p.shardIDs[s]))}
			batches = append(batches, mb)
		}
		if err := mb.b.Stage(sess, &cps[id]); err != nil {
			results[id] = obsResult{kind: resServed, err: err}
			continue
		}
		mb.ids = append(mb.ids, id)
		results[id] = obsResult{kind: resServed, flow: cps[id].Throughput * dt}
		staged++
	}
	// Predict per model, and evict batches that went idle: a batch with no
	// staged instance this tick is kept only while some session of the shard
	// still serves its model (the sessions of down instances included — they
	// resume on their old epoch if no reset intervenes).
	live := batches[:0]
	for _, mb := range batches {
		if len(mb.ids) == 0 {
			if p.shardServesModel(s, mb.m) {
				live = append(live, mb)
			}
			continue
		}
		live = append(live, mb)
		mBatchSize.Observe(float64(len(mb.ids)))
		preds, err := mb.b.Predict()
		if err != nil {
			for _, id := range mb.ids {
				p.results[id].err = err
			}
			continue
		}
		for k, id := range mb.ids {
			pred := preds[k]
			p.sessions[id].Record(&p.cps[id], pred)
			p.results[id].ttfSec = pred.TTFSec
		}
	}
	p.batches[s] = live
	p.staged[s] = staged
}

// shardServesModel reports whether any session of shard s currently serves
// model m. Only reached for idle batches (an epoch retiring), so the linear
// walk is off the steady-state path.
func (p *pool) shardServesModel(s int, m *core.Model) bool {
	for _, id := range p.shardIDs[s] {
		if p.sessions[id].Session().Model() == m {
			return true
		}
	}
	return false
}

// shardOf is the consistent instance→shard assignment: a 64-bit FNV-1a hash
// of the instance ID. Stable across runs and independent of staging order.
func shardOf(id, shards int) int {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	x := uint64(id)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= prime
		x >>= 8
	}
	return int(h % uint64(shards))
}

// flush hands the tick to the workers, one signal per shard; the driver must
// have written tSec/dtSec (and any down-flag updates) before calling. It
// returns false if ctx is cancelled before every shard was signalled (the
// barrier stays consistent — call wait regardless); a nil ctx never cancels.
// In serial mode it runs every shard tick inline and never cancels mid-tick.
func (p *pool) flush(ctx context.Context) bool {
	if p.serial {
		for s := range p.shardIDs {
			p.shardTick(s)
		}
		return true
	}
	for _, ch := range p.work {
		p.tick.Add(1)
		if ctx == nil {
			ch <- struct{}{}
			continue
		}
		select {
		case ch <- struct{}{}:
		case <-ctx.Done():
			p.tick.Done()
			return false
		}
	}
	return true
}

// wait blocks until every signalled shard has finished its tick.
func (p *pool) wait() {
	if p.serial {
		return
	}
	p.tick.Wait()
}

// close shuts the tick channels down and waits for the workers to exit.
// Call only after wait (no tick in flight).
func (p *pool) close() {
	if p.serial {
		return
	}
	for _, ch := range p.work {
		close(ch)
	}
	p.workers.Wait()
}
