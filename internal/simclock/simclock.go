// Package simclock provides a deterministic simulated clock and a
// discrete-event scheduler used by the whole simulation substrate.
//
// The testbed (internal/testbed) never reads the wall clock: every component
// observes time through a *Clock and schedules future work through a
// *Scheduler. This keeps experiments exactly reproducible and lets a
// two-hour aging run execute in milliseconds.
//
// Time is represented as time.Duration offsets from the start of the
// simulation (t = 0). The paper's monitoring granularity is 15 seconds per
// checkpoint; the scheduler has no fixed step, events may be scheduled at any
// duration.
package simclock

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Clock is a simulated clock. The zero value is a clock at t = 0.
//
// Clock is not safe for concurrent use: the simulation substrate is a
// single-goroutine discrete-event simulation, and sharing a clock across
// goroutines would make runs irreproducible anyway.
type Clock struct {
	now time.Duration
}

// Now returns the current simulated time as an offset from the start of the
// run.
func (c *Clock) Now() time.Duration { return c.now }

// Seconds returns the current simulated time in seconds. Most of the paper's
// quantities (time to failure, checkpoints) are expressed in seconds, so this
// is the most frequently used accessor.
func (c *Clock) Seconds() float64 { return c.now.Seconds() }

// advance moves the clock forward to t. It panics if t is in the past,
// because going backwards in time is always a scheduler bug, never a
// recoverable condition.
func (c *Clock) advance(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("simclock: attempt to move clock backwards from %v to %v", c.now, t))
	}
	c.now = t
}

// EventFunc is a callback executed when a scheduled event fires. The clock
// has already been advanced to the event's time when the callback runs.
type EventFunc func()

// event is a single pending entry in the scheduler's queue.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO order for events at the same instant
	fn  EventFunc
	// canceled events stay in the heap but are skipped when popped. This is
	// cheaper than removing them eagerly and keeps Cancel O(1).
	canceled bool
}

// EventID identifies a scheduled event so that it can be canceled. The zero
// value is not a valid ID.
type EventID struct {
	ev *event
}

// Valid reports whether the ID refers to a scheduled (possibly already fired)
// event.
func (id EventID) Valid() bool { return id.ev != nil }

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Scheduler is a discrete-event scheduler bound to a Clock.
//
// A Scheduler is single-goroutine by design; see Clock.
type Scheduler struct {
	clock *Clock
	queue eventQueue
	seq   uint64

	// stopped is set by Stop and makes Run return after the current event.
	stopped bool
}

// NewScheduler returns a Scheduler driving the given clock. If clock is nil a
// fresh clock at t = 0 is created.
func NewScheduler(clock *Clock) *Scheduler {
	if clock == nil {
		clock = &Clock{}
	}
	return &Scheduler{clock: clock}
}

// Clock returns the clock driven by this scheduler.
func (s *Scheduler) Clock() *Clock { return s.clock }

// Now returns the current simulated time.
func (s *Scheduler) Now() time.Duration { return s.clock.Now() }

// Len returns the number of pending (non-canceled) events.
func (s *Scheduler) Len() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// ErrPastEvent is returned by At when asked to schedule an event before the
// current simulated time.
var ErrPastEvent = errors.New("simclock: event scheduled in the past")

// At schedules fn to run at absolute simulated time t. Events scheduled for
// the current instant run after all events already queued for that instant.
func (s *Scheduler) At(t time.Duration, fn EventFunc) (EventID, error) {
	if t < s.clock.Now() {
		return EventID{}, fmt.Errorf("%w: at %v, now %v", ErrPastEvent, t, s.clock.Now())
	}
	if fn == nil {
		return EventID{}, errors.New("simclock: nil event function")
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return EventID{ev: ev}, nil
}

// After schedules fn to run d after the current simulated time. A negative d
// is treated as zero.
func (s *Scheduler) After(d time.Duration, fn EventFunc) (EventID, error) {
	if d < 0 {
		d = 0
	}
	return s.At(s.clock.Now()+d, fn)
}

// Every schedules fn to run every interval, starting interval from now, until
// the returned cancel function is called or the scheduler stops. The interval
// must be positive.
func (s *Scheduler) Every(interval time.Duration, fn EventFunc) (cancel func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("simclock: non-positive interval %v", interval)
	}
	if fn == nil {
		return nil, errors.New("simclock: nil event function")
	}
	stopped := false
	var schedule func() error
	var lastID EventID
	schedule = func() error {
		id, err := s.After(interval, func() {
			if stopped {
				return
			}
			fn()
			if stopped {
				return
			}
			// Re-arm. Scheduling from inside an event callback is always in
			// the future, so the error can only be a nil-func bug.
			if err := schedule(); err != nil {
				panic(fmt.Sprintf("simclock: re-arming periodic event: %v", err))
			}
		})
		lastID = id
		return err
	}
	if err := schedule(); err != nil {
		return nil, err
	}
	return func() {
		stopped = true
		s.Cancel(lastID)
	}, nil
}

// Cancel prevents a scheduled event from firing. Canceling an event that has
// already fired, or an invalid ID, is a no-op.
func (s *Scheduler) Cancel(id EventID) {
	if id.ev != nil {
		id.ev.canceled = true
	}
}

// Stop makes Run and RunUntil return after the event currently being
// processed (if any). Pending events remain queued.
func (s *Scheduler) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Scheduler) Stopped() bool { return s.stopped }

// step pops and runs the earliest pending event. It reports whether an event
// was run.
func (s *Scheduler) step(limit time.Duration, bounded bool) bool {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.canceled {
			heap.Pop(&s.queue)
			continue
		}
		if bounded && next.at > limit {
			return false
		}
		heap.Pop(&s.queue)
		s.clock.advance(next.at)
		next.fn()
		return true
	}
	return false
}

// Run executes events in time order until the queue drains or Stop is called.
// It returns the number of events executed.
func (s *Scheduler) Run() int {
	n := 0
	for !s.stopped && s.step(0, false) {
		n++
	}
	return n
}

// RunUntil executes events in time order until the queue drains, Stop is
// called, or the next event would be after t. The clock is finally advanced
// to t (even if no event fired), so callers can rely on Now() == t when the
// simulation ran to completion without stopping.
func (s *Scheduler) RunUntil(t time.Duration) int {
	n := 0
	for !s.stopped && s.step(t, true) {
		n++
	}
	if !s.stopped && s.clock.Now() < t {
		s.clock.advance(t)
	}
	return n
}
