package simclock

import (
	"errors"
	"testing"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
	if got := c.Seconds(); got != 0 {
		t.Fatalf("zero clock Seconds() = %v, want 0", got)
	}
}

func TestClockAdvanceBackwardsPanics(t *testing.T) {
	c := &Clock{}
	c.advance(10 * time.Second)
	defer func() {
		if recover() == nil {
			t.Fatalf("advancing backwards did not panic")
		}
	}()
	c.advance(5 * time.Second)
}

func TestSchedulerRunsEventsInOrder(t *testing.T) {
	s := NewScheduler(nil)
	var order []string
	mustAt := func(d time.Duration, name string) {
		t.Helper()
		if _, err := s.At(d, func() { order = append(order, name) }); err != nil {
			t.Fatalf("At(%v): %v", d, err)
		}
	}
	mustAt(3*time.Second, "c")
	mustAt(1*time.Second, "a")
	mustAt(2*time.Second, "b")

	if n := s.Run(); n != 3 {
		t.Fatalf("Run() executed %d events, want 3", n)
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("event order = %v, want %v", order, want)
		}
	}
	if got := s.Now(); got != 3*time.Second {
		t.Fatalf("clock after run = %v, want 3s", got)
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler(nil)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.At(time.Second, func() { order = append(order, i) }); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events ran out of order: %v", order)
		}
	}
}

func TestSchedulerPastEvent(t *testing.T) {
	s := NewScheduler(nil)
	if _, err := s.At(5*time.Second, func() {}); err != nil {
		t.Fatalf("At: %v", err)
	}
	s.Run()
	_, err := s.At(1*time.Second, func() {})
	if !errors.Is(err, ErrPastEvent) {
		t.Fatalf("scheduling in the past: err = %v, want ErrPastEvent", err)
	}
}

func TestSchedulerNilFunc(t *testing.T) {
	s := NewScheduler(nil)
	if _, err := s.At(time.Second, nil); err == nil {
		t.Fatalf("At with nil func succeeded, want error")
	}
	if _, err := s.Every(time.Second, nil); err == nil {
		t.Fatalf("Every with nil func succeeded, want error")
	}
}

func TestSchedulerAfterNegativeDelay(t *testing.T) {
	s := NewScheduler(nil)
	fired := false
	if _, err := s.After(-time.Second, func() { fired = true }); err != nil {
		t.Fatalf("After(-1s): %v", err)
	}
	s.Run()
	if !fired {
		t.Fatalf("event with negative delay did not fire")
	}
	if s.Now() != 0 {
		t.Fatalf("negative delay advanced the clock to %v", s.Now())
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(nil)
	fired := false
	id, err := s.At(time.Second, func() { fired = true })
	if err != nil {
		t.Fatalf("At: %v", err)
	}
	if !id.Valid() {
		t.Fatalf("returned EventID is not valid")
	}
	s.Cancel(id)
	if n := s.Run(); n != 0 {
		t.Fatalf("Run() executed %d events after cancel, want 0", n)
	}
	if fired {
		t.Fatalf("canceled event fired")
	}
	// Canceling again, or canceling the zero ID, must not panic.
	s.Cancel(id)
	s.Cancel(EventID{})
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler(nil)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 3 * time.Second, 10 * time.Second} {
		d := d
		if _, err := s.At(d, func() { fired = append(fired, d) }); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	n := s.RunUntil(5 * time.Second)
	if n != 2 {
		t.Fatalf("RunUntil(5s) executed %d events, want 2", n)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("clock after RunUntil = %v, want 5s", s.Now())
	}
	if s.Len() != 1 {
		t.Fatalf("pending events = %d, want 1", s.Len())
	}
	// The remaining event still fires on a later run.
	s.RunUntil(20 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("total fired = %d, want 3", len(fired))
	}
	if s.Now() != 20*time.Second {
		t.Fatalf("clock = %v, want 20s", s.Now())
	}
}

func TestSchedulerEvery(t *testing.T) {
	s := NewScheduler(nil)
	count := 0
	cancel, err := s.Every(10*time.Second, func() { count++ })
	if err != nil {
		t.Fatalf("Every: %v", err)
	}
	s.RunUntil(95 * time.Second)
	if count != 9 {
		t.Fatalf("periodic event fired %d times in 95s at 10s interval, want 9", count)
	}
	cancel()
	s.RunUntil(200 * time.Second)
	if count != 9 {
		t.Fatalf("periodic event fired %d times after cancel, want 9", count)
	}
}

func TestSchedulerEveryInvalidInterval(t *testing.T) {
	s := NewScheduler(nil)
	if _, err := s.Every(0, func() {}); err == nil {
		t.Fatalf("Every(0) succeeded, want error")
	}
	if _, err := s.Every(-time.Second, func() {}); err == nil {
		t.Fatalf("Every(-1s) succeeded, want error")
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler(nil)
	count := 0
	for i := 1; i <= 5; i++ {
		i := i
		if _, err := s.At(time.Duration(i)*time.Second, func() {
			count++
			if i == 2 {
				s.Stop()
			}
		}); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	s.Run()
	if count != 2 {
		t.Fatalf("executed %d events before Stop took effect, want 2", count)
	}
	if !s.Stopped() {
		t.Fatalf("Stopped() = false after Stop")
	}
}

func TestSchedulerEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler(nil)
	var times []time.Duration
	if _, err := s.At(time.Second, func() {
		times = append(times, s.Now())
		if _, err := s.After(2*time.Second, func() {
			times = append(times, s.Now())
		}); err != nil {
			t.Errorf("nested After: %v", err)
		}
	}); err != nil {
		t.Fatalf("At: %v", err)
	}
	s.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Fatalf("nested scheduling produced times %v, want [1s 3s]", times)
	}
}

func TestSchedulerLenSkipsCanceled(t *testing.T) {
	s := NewScheduler(nil)
	id, _ := s.At(time.Second, func() {})
	if _, err := s.At(2*time.Second, func() {}); err != nil {
		t.Fatalf("At: %v", err)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	s.Cancel(id)
	if got := s.Len(); got != 1 {
		t.Fatalf("Len() after cancel = %d, want 1", got)
	}
}

func TestRunUntilAdvancesClockWithEmptyQueue(t *testing.T) {
	s := NewScheduler(nil)
	s.RunUntil(42 * time.Second)
	if s.Now() != 42*time.Second {
		t.Fatalf("RunUntil on empty queue left clock at %v, want 42s", s.Now())
	}
}
