// Package difftest is the differential test harness of the batched,
// flattened prediction engine: it proves — bit for bit, via math.Float64bits
// — that the three prediction paths of every model family agree on arbitrary
// inputs:
//
//	pointer walk   the training-tree Predict (name-resolved, recursive);
//	               the reference semantics
//	flattened      BoundTree/BoundModel.Predict over the array-backed layout
//	batch          PredictBatch over [][]float64 rows, at several batch sizes
//
// plus an end-to-end check that a projected serving session fed through
// core.Batch equals full feature extraction plus Model.PredictRow on a real
// simulated aging stream. Exact equality is the contract the fleet layer's
// byte-identical-report invariant rests on, so these tests use == on bits,
// never tolerances.
package difftest

import (
	"math"
	"testing"

	"agingpred/internal/core"
	"agingpred/internal/dataset"
	"agingpred/internal/fleet"
	"agingpred/internal/linreg"
	"agingpred/internal/m5p"
	"agingpred/internal/monitor"
	"agingpred/internal/regtree"
	"agingpred/internal/rng"
)

// batchSizes are the chunk widths the batch paths are exercised at: the
// degenerate single row, a ragged odd size, a cache-line-scale size, and a
// whole shard tick of the fleet benchmarks.
var batchSizes = []int{1, 7, 64, 256}

// randDataset builds a dataset with enough structure that tree fitters
// actually split: a piecewise response with interactions plus noise.
func randDataset(r *rng.Source, attrs []string, rows int) *dataset.Dataset {
	ds, err := dataset.New("difftest", attrs, "target")
	if err != nil {
		panic(err)
	}
	row := make([]float64, len(attrs))
	for i := 0; i < rows; i++ {
		for j := range row {
			row[j] = r.Float64Between(-50, 50)
		}
		target := 3*row[0] - 0.5*row[1]
		if row[0] > 0 {
			target += 10 * row[2]
		} else {
			target -= row[1] * 0.25
		}
		if len(row) > 3 && row[3] > 10 {
			target += 100
		}
		target += r.Normal(0, 2)
		if err := ds.Append(row, target); err != nil {
			panic(err)
		}
	}
	return ds
}

func attrNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	return names
}

// padLayout embeds the training attributes in a wider row layout with decoy
// columns on both sides, so binding must remap every column index.
func padLayout(attrs []string) (padded []string, place func(src, dst []float64) []float64) {
	padded = append([]string{"pad_lo"}, attrs...)
	padded = append(padded, "pad_hi")
	place = func(src, dst []float64) []float64 {
		if dst == nil {
			dst = make([]float64, len(src)+2)
		}
		dst[0] = 1e9 // decoys are poison: a misbound column shows up instantly
		copy(dst[1:], src)
		dst[len(dst)-1] = -1e9
		return dst
	}
	return padded, place
}

// randRows draws evaluation rows, including occasional values far outside
// the training range so extrapolating leaf models are covered too.
func randRows(r *rng.Source, width, n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, width)
		for j := range row {
			row[j] = r.Float64Between(-50, 50)
			if r.Intn(10) == 0 {
				row[j] *= 1e3
			}
		}
		rows[i] = row
	}
	return rows
}

// checkBits fails the test when two predictions differ in even one bit.
func checkBits(t *testing.T, path string, i int, want, got float64) {
	t.Helper()
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Fatalf("%s: row %d: %v (bits %#x) != reference %v (bits %#x)",
			path, i, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// scalarVsBatch checks PredictBatch against per-row scalar predictions at
// every batch size; predict is the flattened scalar path, batch the batched
// one.
func scalarVsBatch(t *testing.T, rows [][]float64, predict func([]float64) float64, batch func([][]float64, []float64)) {
	t.Helper()
	want := make([]float64, len(rows))
	for i, row := range rows {
		want[i] = predict(row)
	}
	for _, size := range batchSizes {
		out := make([]float64, size)
		for lo := 0; lo < len(rows); lo += size {
			hi := lo + size
			if hi > len(rows) {
				hi = len(rows)
			}
			chunk := rows[lo:hi]
			batch(chunk, out[:len(chunk)])
			for k := range chunk {
				checkBits(t, "batch", lo+k, want[lo+k], out[k])
			}
		}
	}
}

func TestM5PFlattenedAndBatchMatchPointerWalk(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		r := rng.NewNamed(seed, "difftest/m5p")
		attrs := attrNames(4 + r.Intn(4))
		ds := randDataset(r, attrs, 200+r.Intn(200))
		opts := m5p.Options{MinInstances: 5 + r.Intn(10)}
		if seed%2 == 0 {
			opts.NoSmoothing = true
		}
		if seed%3 == 0 {
			opts.Unpruned = true
		}
		tree, err := m5p.Fit(ds, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		padded, place := padLayout(attrs)
		for _, layout := range []struct {
			name  string
			attrs []string
			place func(src, dst []float64) []float64
		}{
			{"identity", attrs, func(src, dst []float64) []float64 { return src }},
			{"padded", padded, place},
		} {
			bound, err := tree.Bind(layout.attrs)
			if err != nil {
				t.Fatalf("seed %d: bind %s: %v", seed, layout.name, err)
			}
			rows := randRows(r, len(attrs), 512)
			boundRows := make([][]float64, len(rows))
			for i, row := range rows {
				boundRows[i] = layout.place(row, nil)
				want, err := tree.Predict(layout.attrs, boundRows[i])
				if err != nil {
					t.Fatalf("seed %d: pointer walk: %v", seed, err)
				}
				checkBits(t, "flattened/"+layout.name, i, want, bound.Predict(boundRows[i]))
			}
			scalarVsBatch(t, boundRows, bound.Predict, bound.PredictBatch)
		}
	}
}

func TestRegtreeFlattenedAndBatchMatchPointerWalk(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		r := rng.NewNamed(seed, "difftest/regtree")
		attrs := attrNames(4 + r.Intn(4))
		ds := randDataset(r, attrs, 200+r.Intn(200))
		tree, err := regtree.Fit(ds, regtree.Options{MinInstances: 5 + r.Intn(10)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		padded, place := padLayout(attrs)
		bound, err := tree.Bind(padded)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rows := randRows(r, len(attrs), 512)
		boundRows := make([][]float64, len(rows))
		for i, row := range rows {
			boundRows[i] = place(row, nil)
			want, err := tree.Predict(padded, boundRows[i])
			if err != nil {
				t.Fatalf("seed %d: pointer walk: %v", seed, err)
			}
			checkBits(t, "flattened", i, want, bound.Predict(boundRows[i]))
		}
		scalarVsBatch(t, boundRows, bound.Predict, bound.PredictBatch)
	}
}

func TestLinregBoundAndBatchMatchModel(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		r := rng.NewNamed(seed, "difftest/linreg")
		attrs := attrNames(4 + r.Intn(4))
		ds := randDataset(r, attrs, 150+r.Intn(150))
		model, err := linreg.Fit(ds, linreg.Options{EliminateAttrs: seed%2 == 0})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		padded, place := padLayout(attrs)
		bound, err := model.Bind(padded)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rows := randRows(r, len(attrs), 512)
		boundRows := make([][]float64, len(rows))
		for i, row := range rows {
			boundRows[i] = place(row, nil)
			want, err := model.Predict(padded, boundRows[i])
			if err != nil {
				t.Fatalf("seed %d: model predict: %v", seed, err)
			}
			checkBits(t, "bound", i, want, bound.Predict(boundRows[i]))
		}
		scalarVsBatch(t, boundRows, bound.Predict, bound.PredictBatch)
	}
}

// TestServingPathsAgreeOnAgingStream is the end-to-end differential check on
// a real simulated aging stream (the fleet's deterministic seed-1 training
// runs, the same generator behind the experiment 4.1 goldens): for each model
// family, a projected serving Session, the same sessions evaluated through
// core.Batch at the shard-tick grouping, and the reference full-extraction +
// Model.PredictRow path must produce bit-identical predictions at every
// checkpoint of every stream.
func TestServingPathsAgreeOnAgingStream(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three models")
	}
	series, err := fleet.TrainingSeries(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []core.ModelKind{core.ModelM5P, core.ModelRegressionTree, core.ModelLinearRegression} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m, err := core.Train(core.Config{Model: kind}, series)
			if err != nil {
				t.Fatal(err)
			}
			attrs := m.Attrs()

			// Reference path: full extraction, scalar PredictRow.
			refs := make([][]core.Prediction, len(series))
			for si, sr := range series {
				x := m.Schema().Stream()
				refs[si] = make([]core.Prediction, sr.Len())
				for ci, cp := range sr.Checkpoints {
					row := x.Step(cp)
					pr, err := m.PredictRow(cp.TimeSec, attrs, row)
					if err != nil {
						t.Fatal(err)
					}
					refs[si][ci] = pr
				}
			}

			check := func(path string, si, ci int, got core.Prediction) {
				t.Helper()
				want := refs[si][ci]
				if math.Float64bits(want.TTFSec) != math.Float64bits(got.TTFSec) ||
					want.TTF != got.TTF || want.CrashExpected != got.CrashExpected {
					t.Fatalf("%s: series %d checkpoint %d: %+v != reference %+v", path, si, ci, got, want)
				}
			}

			// Projected scalar sessions.
			for si, sr := range series {
				sess := m.NewSession()
				for ci, cp := range sr.Checkpoints {
					pr, err := sess.Observe(cp)
					if err != nil {
						t.Fatal(err)
					}
					check("session", si, ci, pr)
				}
			}

			// Batch serving: all streams advance in lockstep, one shard-tick
			// batch per time step, exactly like the fleet's shard workers.
			sessions := make([]*core.Session, len(series))
			for i := range sessions {
				sessions[i] = m.NewSession()
			}
			batch := m.NewBatch(len(sessions))
			maxLen := 0
			for _, sr := range series {
				if sr.Len() > maxLen {
					maxLen = sr.Len()
				}
			}
			for ci := 0; ci < maxLen; ci++ {
				batch.Reset()
				var staged []int
				for si, sr := range series {
					if ci >= sr.Len() {
						continue
					}
					cp := sr.Checkpoints[ci]
					if err := batch.Stage(sessions[si], &cp); err != nil {
						t.Fatal(err)
					}
					staged = append(staged, si)
				}
				preds, err := batch.Predict()
				if err != nil {
					t.Fatal(err)
				}
				for k, si := range staged {
					check("batch", si, ci, preds[k])
				}
			}
		})
	}
}

// TestBatchRejectsForeignSession pins the one Stage error path: a session of
// a different model must be rejected, not silently evaluated with the wrong
// regressor.
func TestBatchRejectsForeignSession(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	series, err := fleet.TrainingSeries(1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Train(core.Config{}, series)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Train(core.Config{Model: core.ModelLinearRegression}, series)
	if err != nil {
		t.Fatal(err)
	}
	batch := a.NewBatch(1)
	var cp monitor.Checkpoint
	cp.TimeSec = 15
	if err := batch.Stage(b.NewSession(), &cp); err == nil {
		t.Fatal("staging a foreign session succeeded")
	}
}
