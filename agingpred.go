package agingpred

// This file is the public surface of the library: the root package
// re-exports the train/serve API backed by internal/core so that importing
// "agingpred" is enough to train, persist, load and serve models. The types
// are aliases, not wrappers — a *agingpred.Model IS a *core.Model — so the
// in-module packages (fleet, experiments, the commands) and external callers
// see exactly the same objects.

import (
	"fmt"
	"io"
	"os"

	"agingpred/internal/core"
	"agingpred/internal/dataset"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
	"agingpred/internal/monitor"
)

// The core train/serve types.
type (
	// Model is an immutable trained aging-prediction model; safe for
	// concurrent use. Obtain one with Train, TrainDataset, DecodeModel or
	// LoadModel, and create per-stream serving state with Model.NewSession.
	Model = core.Model
	// Session is the per-stream on-line state of one Model: one session per
	// monitored checkpoint stream, Observe per checkpoint, Reset after a
	// rejuvenation. Not safe for concurrent use itself — sessions are the
	// unit of concurrency.
	Session = core.Session
	// Config configures training; the zero value reproduces the paper's
	// setup (M5P over the full Table 2 schema, 12-checkpoint window).
	Config = core.Config
	// ModelKind selects the learning algorithm.
	ModelKind = core.ModelKind
	// TrainReport summarises a training round.
	TrainReport = core.TrainReport
	// Prediction is one on-line prediction.
	Prediction = core.Prediction
	// RootCauseHint is one root-cause clue from the model-tree structure.
	RootCauseHint = core.RootCauseHint
)

// Data types consumed and produced by the API.
type (
	// Checkpoint is one 15-second observation of a monitored server (the raw
	// Table 2 variables).
	Checkpoint = monitor.Checkpoint
	// Series is a complete monitored execution: checkpoints plus outcome.
	Series = monitor.Series
	// Dataset is the tabular form of extracted feature vectors, as written
	// and read by the CSV/ARFF tooling.
	Dataset = dataset.Dataset
	// Schema is a named feature schema from the features registry.
	Schema = features.Schema
	// EvalOptions configures accuracy evaluation.
	EvalOptions = evalx.Options
	// EvalReport holds the paper's accuracy metrics (MAE, S-MAE,
	// PRE/POST-MAE) for one model on one test stream.
	EvalReport = evalx.Report
)

// The model families.
const (
	ModelM5P              = core.ModelM5P
	ModelLinearRegression = core.ModelLinearRegression
	ModelRegressionTree   = core.ModelRegressionTree
)

// ModelFormatVersion is the persisted-model format version this build reads
// and writes.
const ModelFormatVersion = core.FormatVersion

// Train fits an immutable Model from one or more monitored run-to-crash
// executions, as the paper does off-line.
func Train(cfg Config, series []*Series) (*Model, error) {
	return core.Train(cfg, series)
}

// TrainDataset fits an immutable Model from an already-extracted feature
// dataset (e.g. loaded from a CSV written by agingsim).
func TrainDataset(cfg Config, ds *Dataset) (*Model, error) {
	return core.TrainDataset(cfg, ds)
}

// DecodeModel reads a model artifact written by Model.Encode, verifying the
// format version, checksum and schema compatibility. The decoded model
// predicts bit-identically to the one that was encoded.
func DecodeModel(r io.Reader) (*Model, error) {
	return core.DecodeModel(r)
}

// LoadModel reads a model artifact from a file.
func LoadModel(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := core.DecodeModel(f)
	if err != nil {
		return nil, fmt.Errorf("loading model %s: %w", path, err)
	}
	return m, nil
}

// SaveModel writes a model artifact to a file (created or truncated).
func SaveModel(path string, m *Model) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if err := m.Encode(f); err != nil {
		return fmt.Errorf("saving model %s: %w", path, err)
	}
	return nil
}

// LookupSchema resolves a feature schema by registry name ("full",
// "no-heap", "heap-focus", "full+conn", or any schema registered with
// RegisterSchema); the error for an unknown name lists every valid one.
func LookupSchema(name string) (*Schema, error) {
	return features.LookupSchema(name)
}

// RegisterSchema adds a caller-built schema to the registry, making it
// addressable by name — including by saved model artifacts, which store
// their schema by name.
func RegisterSchema(s *Schema) error {
	return features.RegisterSchema(s)
}

// SchemaNames returns the registered schema names in sorted order.
func SchemaNames() []string {
	return features.SchemaNames()
}

// FormatRootCause renders root-cause hints as a short human-readable report.
func FormatRootCause(hints []RootCauseHint) string {
	return core.FormatRootCause(hints)
}
