package agingpred

// This file exports the adaptive-serving surface backed by internal/adapt:
// the drift-detecting, background-retraining Supervisor and its per-stream
// Streams. Like the rest of the root package these are aliases, not wrappers
// — an *agingpred.Supervisor IS an *adapt.Supervisor.

import "agingpred/internal/adapt"

// The adaptive-serving types.
type (
	// Supervisor owns the adaptive loop around one Model: it watches the
	// resolved prediction error through a drift detector, accumulates
	// completed labeled run-to-crash executions in a bounded training
	// buffer, retrains in the background via the same Train pipeline, and
	// publishes each new model as a ModelEpoch through an atomic swap that
	// live streams pick up at their next Reset boundary — the Observe hot
	// path is never locked.
	Supervisor = adapt.Supervisor
	// Stream is the adaptive counterpart of a Session: per-stream serving
	// state that additionally remembers its predictions until the stream's
	// outcome resolves the labels. ResolveCrash scores them against the
	// observed crash time and donates the run to the training buffer;
	// ResolveCensored discards them after a rejuvenation; Reset adopts the
	// Supervisor's current model epoch.
	Stream = adapt.Stream
	// AdaptConfig tunes a Supervisor (drift detector, training-buffer bound,
	// seed runs).
	AdaptConfig = adapt.Config
	// DriftConfig tunes the sliding-window-MAE drift detector (window,
	// trigger/clear hysteresis band, baseline).
	DriftConfig = adapt.DetectorConfig
	// ModelEpoch is one published generation of a Supervisor's serving
	// model.
	ModelEpoch = adapt.Epoch
	// AdaptStats snapshots a Supervisor's adaptation state (current epoch,
	// retrains, drift trips, buffer fill).
	AdaptStats = adapt.Stats
)

// NewSupervisor wraps an initial trained model as epoch 1 of an adaptive
// serving loop. Create per-stream serving state with Supervisor.NewStream;
// drive adaptation either synchronously (Supervisor.Adapt after each
// resolved run) or with the background worker (StartRetrain + TryPublish /
// Publish).
func NewSupervisor(cfg AdaptConfig, initial *Model) (*Supervisor, error) {
	return adapt.NewSupervisor(cfg, initial)
}
