// Command agingload drives a running agingserve daemon over real sockets: it
// replays a fleet.Specs-drawn heterogeneous instance population — the same
// deterministic simulated servers the fleet subsystem schedules in-process —
// as prediction streams over the network, and reports end-to-end throughput
// and latency.
//
//	agingload -addr 127.0.0.1:7070 -instances 64 -conns 4 -duration 2m
//
// Each connection serves its share of the population sequentially: one
// instance is one stream (checkpoints in order, RESOLVE at its crash or
// censoring, RESET between instances), with up to -window checkpoints
// pipelined ahead so both directions of the socket stay busy. -transport
// picks the binary frame protocol (the hot path) or NDJSON over HTTP — the
// same conversation, so the two are directly A/B-comparable.
//
// Correctness rides along, not just throughput: with -load pointing at the
// artifact the server serves, every -verify-every'th instance also runs a
// local reference session on the same checkpoints, and each returned
// prediction must match the local one bit for bit (time, TTF and the crash
// flag). Any mismatch fails the run. Verification needs a frozen server — a
// hot-swapped epoch changes the answers by design — so it turns itself off
// for predictions from a later epoch than the handshake's.
//
// -duration is simulated stream time per instance (15 s checkpoints), not
// wall time: the generator sends as fast as the server answers. -bench-json
// appends the run to a benchjson trajectory file (BENCH_serve.json), and
// -sweep 1,2,4,8 replays the whole run at each connection count in turn — a
// concurrency sweep, one benchjson run per point — which is how the batched
// server's cross-connection wins are measured against the scalar baseline.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"agingpred/internal/benchjson"
	"agingpred/internal/core"
	"agingpred/internal/fleet"
	"agingpred/internal/monitor"
	"agingpred/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agingload:", err)
		os.Exit(1)
	}
}

type options struct {
	addr        string
	transport   string
	schema      string
	seed        uint64
	instances   int
	conns       int
	window      int
	ticks       int
	verifyEvery int
	model       *core.Model
}

func run(args []string) error {
	fs := flag.NewFlagSet("agingload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:7070", "server address: host:port of the -transport listener")
		transport   = fs.String("transport", "binary", "transport to drive: binary (frame protocol) or http (NDJSON)")
		schema      = fs.String("schema", "", "feature schema to request at the handshake (\"\" = accept the server's)")
		instances   = fs.Int("instances", 64, "replayed instances (fleet.Specs population size)")
		conns       = fs.Int("conns", 4, "concurrent connections; each serves its share of the instances sequentially")
		duration    = fs.Duration("duration", 2*time.Minute, "simulated stream time per instance (15s checkpoints), not wall time")
		seed        = fs.Uint64("seed", 1, "population seed (same seed = same instances as agingfleet)")
		window      = fs.Int("window", 32, "checkpoints pipelined ahead per connection")
		sweep       = fs.String("sweep", "", "comma-separated connection counts to sweep (e.g. 1,4,16); overrides -conns, one result line and benchjson run per point")
		loadPath    = fs.String("load", "", "model artifact for local reference verification (must be what the server serves)")
		verifyEvery = fs.Int("verify-every", 8, "verify every Nth instance bit-for-bit against the local reference (0 = none; needs -load)")
		benchPath   = fs.String("bench-json", "", "append the run to this benchjson trajectory file")
		label       = fs.String("label", "", "benchjson run label (default serve/<transport>)")
		stamp       = fs.String("stamp", "", "benchjson run stamp (a date or PR tag)")
		note        = fs.String("note", "", "benchjson run note")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *transport != "binary" && *transport != "http" {
		return fmt.Errorf("unknown -transport %q (binary or http)", *transport)
	}
	if *instances <= 0 || *conns <= 0 || *window <= 0 {
		return fmt.Errorf("-instances, -conns and -window must be positive")
	}
	if *conns > *instances {
		*conns = *instances
	}
	ticks := int(*duration / monitor.DefaultInterval)
	if ticks < 1 {
		return fmt.Errorf("-duration %v is shorter than one %v checkpoint interval", *duration, monitor.DefaultInterval)
	}
	opts := options{
		addr:        *addr,
		transport:   *transport,
		schema:      *schema,
		seed:        *seed,
		instances:   *instances,
		conns:       *conns,
		window:      *window,
		ticks:       ticks,
		verifyEvery: *verifyEvery,
	}
	if *loadPath != "" && *verifyEvery > 0 {
		f, err := os.Open(*loadPath)
		if err != nil {
			return fmt.Errorf("loading reference model: %w", err)
		}
		m, err := core.DecodeModel(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading reference model: %w", err)
		}
		opts.model = m
	}

	points := []int{opts.conns}
	if *sweep != "" {
		pts, err := parseSweep(*sweep)
		if err != nil {
			return err
		}
		points = pts
	}

	var (
		runs       []benchjson.Run
		mismatches int
	)
	for _, c := range points {
		o := opts
		o.conns = c
		if o.conns > o.instances {
			o.conns = o.instances
		}
		res, elapsed, err := drive(o)
		if err != nil {
			return err
		}
		cps := float64(res.predictions) / elapsed.Seconds()
		p50 := percentile(res.latencies, 0.50)
		p99 := percentile(res.latencies, 0.99)
		fmt.Fprintf(os.Stderr,
			"agingload: %s: %d instances over %d conns: %d checkpoints in %.2fs = %.0f cps, latency p50 %s p99 %s, %d crashes\n",
			o.transport, o.instances, o.conns, res.predictions, elapsed.Seconds(), cps,
			time.Duration(p50*float64(time.Second)).Round(time.Microsecond),
			time.Duration(p99*float64(time.Second)).Round(time.Microsecond),
			res.crashes)
		if o.model != nil {
			fmt.Fprintf(os.Stderr, "agingload: verified %d sampled predictions bit-for-bit: %d mismatches (%d skipped after epoch swap)\n",
				res.verified, res.mismatches, res.skipped)
		}
		mismatches += res.mismatches
		l := *label
		if l == "" {
			l = "serve/" + o.transport
		}
		if len(points) > 1 {
			l = fmt.Sprintf("%s/c%d", l, o.conns)
		}
		runs = append(runs, benchjson.Run{
			Label: l,
			Stamp: *stamp,
			Note:  *note,
			Metrics: map[string]float64{
				"checkpoints_per_sec": math.Round(cps),
				"latency_p50_us":      math.Round(p50*1e6*10) / 10,
				"latency_p99_us":      math.Round(p99*1e6*10) / 10,
			},
		})
	}
	if *benchPath != "" {
		f := &benchjson.File{
			Bench:   "serve",
			Command: fmt.Sprintf("agingload -transport %s -instances %d -conns %s -duration %v -seed %d", opts.transport, opts.instances, sweepString(points), *duration, opts.seed),
			Env:     benchjson.CurrentEnv(),
			Runs:    runs,
		}
		if err := benchjson.Merge(*benchPath, f); err != nil {
			return err
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("%d sampled predictions did not match the local reference", mismatches)
	}
	return nil
}

// parseSweep turns "1,4,16" into connection counts for a concurrency sweep.
func parseSweep(s string) ([]int, error) {
	var points []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -sweep point %q (want positive connection counts, comma-separated)", part)
		}
		points = append(points, n)
	}
	return points, nil
}

func sweepString(points []int) string {
	parts := make([]string, len(points))
	for i, p := range points {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ",")
}

// result aggregates one run's counters across connections.
type result struct {
	predictions int
	crashes     int
	verified    int
	mismatches  int
	skipped     int
	latencies   []float64 // send→recv seconds, one per prediction
}

func (r *result) merge(o result) {
	r.predictions += o.predictions
	r.crashes += o.crashes
	r.verified += o.verified
	r.mismatches += o.mismatches
	r.skipped += o.skipped
	r.latencies = append(r.latencies, o.latencies...)
}

// drive replays the population over opts.conns concurrent connections and
// aggregates the results.
func drive(opts options) (result, time.Duration, error) {
	specs := fleet.Specs(opts.seed, opts.instances)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		total   result
		firstEr error
	)
	start := time.Now()
	for c := 0; c < opts.conns; c++ {
		// Round-robin instance→connection assignment, like the fleet's
		// instance→shard assignment.
		var mine []fleet.InstanceSpec
		for i := c; i < len(specs); i += opts.conns {
			mine = append(mine, specs[i])
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := runConn(opts, mine)
			mu.Lock()
			defer mu.Unlock()
			total.merge(res)
			if err != nil && firstEr == nil {
				firstEr = err
			}
		}()
	}
	wg.Wait()
	return total, time.Since(start), firstEr
}

// pending is one pipelined checkpoint awaiting its prediction.
type pending struct {
	seq  uint32
	sent time.Time
	// check carries the local reference prediction when this instance is
	// sampled for verification.
	check bool
	want  core.Prediction
}

// pendingRing is a fixed-capacity FIFO of in-flight checkpoints. A ring
// instead of a slice because the hot loop pops one entry per prediction —
// a slice would memmove the whole window each time.
type pendingRing struct {
	buf  []pending
	head int
	size int
}

func newPendingRing(capacity int) *pendingRing {
	return &pendingRing{buf: make([]pending, capacity)}
}

func (r *pendingRing) push(p pending) {
	r.buf[(r.head+r.size)%len(r.buf)] = p
	r.size++
}

func (r *pendingRing) pop() pending {
	p := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return p
}

// runConn drives one connection: its instances in sequence, each as one
// pipelined stream ending in RESOLVE + RESET.
func runConn(opts options, specs []fleet.InstanceSpec) (result, error) {
	var (
		conn serve.Conn
		err  error
	)
	if opts.transport == "http" {
		conn, err = serve.DialHTTP("http://"+opts.addr, opts.schema)
	} else {
		conn, err = serve.Dial(opts.addr, opts.schema)
	}
	if err != nil {
		return result{}, err
	}
	defer conn.Close()

	var (
		res     result
		seq     uint32
		queue   = newPendingRing(opts.window)
		baseEp  uint32 // pinned at the first prediction (the HTTP handshake completes lazily)
		swapped = false
	)
	// recvOne collects the oldest outstanding prediction and scores it.
	recvOne := func() error {
		p := queue.pop()
		got, err := conn.Recv()
		if err != nil {
			return err
		}
		res.latencies = append(res.latencies, time.Since(p.sent).Seconds())
		res.predictions++
		if got.Seq != p.seq {
			return fmt.Errorf("prediction out of order: got seq %d, want %d", got.Seq, p.seq)
		}
		if baseEp == 0 {
			baseEp = got.Epoch
		}
		if got.Epoch != baseEp {
			swapped = true // adaptive server swapped epochs; answers legitimately diverge
		}
		if p.check {
			if swapped {
				res.skipped++
				return nil
			}
			res.verified++
			g, w := got.Pred(), p.want
			if math.Float64bits(g.TimeSec) != math.Float64bits(w.TimeSec) ||
				math.Float64bits(g.TTFSec) != math.Float64bits(w.TTFSec) ||
				g.CrashExpected != w.CrashExpected {
				res.mismatches++
				if res.mismatches == 1 {
					fmt.Fprintf(os.Stderr, "agingload: seq %d mismatch: got (t=%v ttf=%v crash=%v), want (t=%v ttf=%v crash=%v)\n",
						got.Seq, g.TimeSec, g.TTFSec, g.CrashExpected, w.TimeSec, w.TTFSec, w.CrashExpected)
				}
			}
		}
		return nil
	}
	drain := func() error {
		for queue.size > 0 {
			if err := recvOne(); err != nil {
				return err
			}
		}
		return nil
	}

	var cp monitor.Checkpoint
	for _, spec := range specs {
		replay := fleet.NewReplay(opts.seed, spec)
		var ref *core.Session
		if opts.model != nil && opts.verifyEvery > 0 && spec.ID%opts.verifyEvery == 0 {
			ref = opts.model.NewSession()
		}
		for tick := 0; tick < opts.ticks; tick++ {
			if replay.Step(&cp) {
				// The instance crashed this interval: resolve the stream's
				// labels, reset server and reference to a fresh stream, and
				// keep replaying the recovered instance.
				if err := drain(); err != nil {
					return res, err
				}
				res.crashes++
				if err := conn.Resolve(serve.ResolveCrash, replay.TimeSec()); err != nil {
					return res, err
				}
				if err := conn.Reset(); err != nil {
					return res, err
				}
				replay.Restart()
				if ref != nil {
					ref = opts.model.NewSession()
				}
				continue
			}
			seq++
			p := pending{seq: seq, sent: time.Now()}
			if ref != nil {
				want, err := ref.Observe(cp)
				if err != nil {
					return res, fmt.Errorf("local reference session: %w", err)
				}
				p.check, p.want = true, want
			}
			if err := conn.Send(seq, &cp); err != nil {
				return res, err
			}
			queue.push(p)
			// Burst drain: once the window fills, pull half of it back in one
			// go. Recv flushes the outbound buffer first, so draining in
			// bursts amortizes one syscall-heavy flush over window/2 replies
			// instead of paying it on every send/recv pair.
			if queue.size >= opts.window {
				for queue.size > opts.window/2 {
					if err := recvOne(); err != nil {
						return res, err
					}
				}
			}
		}
		// Stream over without a crash: censored, like a rejuvenation.
		if err := drain(); err != nil {
			return res, err
		}
		if err := conn.Resolve(serve.ResolveCensored, 0); err != nil {
			return res, err
		}
		if err := conn.Reset(); err != nil {
			return res, err
		}
	}
	return res, drain()
}

// percentile returns the p-quantile (0..1) of the samples, 0 when empty.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}
