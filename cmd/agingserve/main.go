// Command agingserve is the network prediction daemon: it puts the library's
// serving stack behind real sockets, so a monitored application server (or
// the agingload generator) streams its 15-second checkpoints to a predictor
// process instead of linking the library.
//
// Two transports serve the same session core:
//
//	agingserve -load model.bin -tcp :7070 -http :8080
//
// -tcp speaks the compact binary frame protocol (the hot path; see the
// internal/serve package docs for the wire format), -http speaks NDJSON over
// one chunked POST to /v1/stream — the same conversation, readable with
// curl — and also carries the shared admin endpoints: /metrics (Prometheus
// text format), /healthz (JSON liveness) and /debug/pprof.
//
// With -batch N the TCP transport switches to the cross-connection batching
// backend: checkpoint frames from all live connections are hash-partitioned
// into worker shards and grouped into micro-batches of up to N rows, each
// evaluated with one batched model call and fanned back out — a partial batch
// flushes after -batch-window. Replies stay bit-identical to scalar mode; the
// NDJSON transport always serves scalar.
//
// The served model comes from -load (a versioned artifact from `agingpredict
// -save` or `agingfleet -save`), or is trained at startup from the fleet
// training executions of -seed when -load is absent. Each connection owns its
// own per-stream session of the shared immutable model; with -adaptive each
// connection owns an adaptive stream instead — RESOLVE frames feed crash
// labels to the drift detector and training buffer, and a background worker
// retrains and hot-swaps model epochs under the live sessions.
//
// Signals: SIGHUP re-reads the -load artifact and publishes it as a new
// serving epoch (live streams adopt it at their next RESET); SIGTERM/SIGINT
// drain — listeners close, in-flight predictions complete, new frames are
// refused with a typed ERROR — and the process exits 0 once the session
// table empties (or -drain-timeout expires).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"agingpred"
	"agingpred/internal/fleet"
	"agingpred/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agingserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agingserve", flag.ContinueOnError)
	var (
		tcpAddr      = fs.String("tcp", ":7070", "binary frame protocol listen address (\"\" = disable the TCP transport)")
		httpAddr     = fs.String("http", ":8080", "NDJSON + admin (/metrics, /healthz, pprof) listen address (\"\" = disable the HTTP transport)")
		loadPath     = fs.String("load", "", "serve a saved model artifact instead of training at startup; also the artifact SIGHUP hot-reloads")
		seed         = fs.Uint64("seed", 1, "training seed when no -load artifact is given")
		adaptive     = fs.Bool("adaptive", false, "adaptive serving: per-connection streams resolve crash labels via RESOLVE frames, a drift detector watches the error, and retrained model epochs hot-swap under live sessions")
		maxSessions  = fs.Int("max-sessions", serve.DefaultMaxSessions, "max concurrently-open sessions across both transports")
		maxFrame     = fs.Int("max-frame", serve.DefaultMaxFrameBytes, "max binary frame body size in bytes")
		idle         = fs.Duration("idle", serve.DefaultIdleTimeout, "evict sessions that send nothing for this long (negative = never)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for the session table to empty before force-closing")
		batch        = fs.Int("batch", 0, "cross-connection micro-batching: collect up to this many checkpoints across TCP connections per model evaluation (0 = scalar, one evaluation per frame)")
		batchWindow  = fs.Duration("batch-window", serve.DefaultBatchWindow, "micro-batch flush deadline: a partial batch waits at most this long for more rows")
		batchShards  = fs.Int("batch-shards", 0, "batching worker shards; sessions are hash-partitioned across them (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	model, err := loadOrTrain(*loadPath, *seed)
	if err != nil {
		return err
	}
	cfg := agingpred.ServeConfig{
		TCPAddr:       *tcpAddr,
		HTTPAddr:      *httpAddr,
		MaxSessions:   *maxSessions,
		MaxFrameBytes: *maxFrame,
		IdleTimeout:   *idle,
		Batch:         *batch,
		BatchWindow:   *batchWindow,
		BatchShards:   *batchShards,
	}
	if *adaptive {
		sup, err := agingpred.NewSupervisor(agingpred.AdaptConfig{}, model)
		if err != nil {
			return err
		}
		cfg.Supervisor = sup
	} else {
		cfg.Model = model
	}
	srv, err := agingpred.Serve(cfg)
	if err != nil {
		return err
	}
	mode := "frozen"
	if *adaptive {
		mode = "adaptive"
	}
	fmt.Fprintf(os.Stderr, "agingserve: serving %s model %s (schema %s, %s)",
		mode, model.Kind(), model.Schema().Name(), sourceDesc(*loadPath, *seed))
	if *batch > 0 {
		fmt.Fprintf(os.Stderr, " batch=%d/%s", *batch, *batchWindow)
	}
	if a := srv.TCPAddr(); a != "" {
		fmt.Fprintf(os.Stderr, " tcp=%s", a)
	}
	if a := srv.HTTPAddr(); a != "" {
		fmt.Fprintf(os.Stderr, " http=%s", a)
	}
	fmt.Fprintln(os.Stderr)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for sig := range sigs {
		if sig != syscall.SIGHUP {
			fmt.Fprintf(os.Stderr, "agingserve: %s: draining %d sessions\n", sig, srv.Sessions())
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			err := srv.Drain(ctx)
			cancel()
			if err != nil {
				fmt.Fprintf(os.Stderr, "agingserve: drain: %v (force-closed)\n", err)
			}
			return nil
		}
		// SIGHUP: hot model reload through the epoch machinery.
		if *loadPath == "" {
			fmt.Fprintln(os.Stderr, "agingserve: SIGHUP ignored: no -load artifact to reload")
			continue
		}
		m, err := agingpred.LoadModel(*loadPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "agingserve: SIGHUP reload: %v (old epoch keeps serving)\n", err)
			continue
		}
		epoch, err := srv.SwapModel(m)
		if err != nil {
			fmt.Fprintf(os.Stderr, "agingserve: SIGHUP reload: %v\n", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "agingserve: reloaded %s as epoch %d\n", *loadPath, epoch)
	}
	return nil
}

// loadOrTrain resolves the served model: a saved artifact, or a fresh
// training round on the fleet training executions.
func loadOrTrain(loadPath string, seed uint64) (*agingpred.Model, error) {
	if loadPath != "" {
		return agingpred.LoadModel(loadPath)
	}
	return fleet.TrainModel(seed)
}

func sourceDesc(loadPath string, seed uint64) string {
	if loadPath != "" {
		return "from " + loadPath
	}
	return fmt.Sprintf("trained at startup, seed %d", seed)
}
