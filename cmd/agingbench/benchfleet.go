package main

import (
	"fmt"
	"runtime"
	"time"

	"agingpred/internal/benchjson"
	"agingpred/internal/core"
	"agingpred/internal/fleet"
	"agingpred/internal/monitor"
	"agingpred/internal/obs"
)

// runBenchJSON is the -bench-json mode: it measures the fleet serving stack —
// end-to-end instance-checkpoints/sec at 1, 4 and GOMAXPROCS shards, plus the
// per-checkpoint serving-engine cost through the scalar Session.Observe path
// and the batched core.Batch path — and appends the datapoints to the given
// trajectory file (BENCH_fleet.json by convention). The simulated workload is
// fixed (256 instances, 45 simulated minutes, the benchmark seed), so
// successive datapoints of one machine are comparable.
func runBenchJSON(path string, seed uint64, stamp string) error {
	const (
		instances = 256
		duration  = 45 * time.Minute
		// engineCps is the checkpoint count of the serving-engine
		// micro-measurement; ~2M checkpoints keeps timer noise under a
		// percent on a single-core box.
		engineCps = 1 << 21
		groupSize = 256 // one simulated shard tick
	)

	fmt.Printf("bench-json: training shared model (seed %d)...\n", seed)
	model, err := fleet.TrainModel(seed)
	if err != nil {
		return err
	}
	series, err := fleet.TrainingSeries(seed)
	if err != nil {
		return err
	}
	cps := series[0].Checkpoints
	if len(cps) == 0 {
		return fmt.Errorf("bench-json: empty training series")
	}
	// Replay the recorded stream cyclically with strictly monotone time, so
	// the sliding-window trackers never hit their time-went-backwards path.
	tickAt := func(i int) monitor.Checkpoint {
		cp := cps[i%len(cps)]
		cp.TimeSec = float64(i+1) * series[0].IntervalSec
		return cp
	}

	out := &benchjson.File{
		Bench:   "fleet",
		Command: fmt.Sprintf("agingbench -bench-json %s -seed %d", path, seed),
		Env:     benchjson.CurrentEnv(),
	}
	addRun := func(label string, metrics map[string]float64) {
		out.Runs = append(out.Runs, benchjson.Run{Label: label, Stamp: stamp, Metrics: metrics})
	}

	// Serving engine, scalar path: one session, grouped like a shard tick.
	sessions := make([]*core.Session, 1)
	sessions[0] = model.NewSession()
	start := time.Now()
	for i := 0; i < engineCps; i++ {
		if _, err := sessions[0].Observe(tickAt(i)); err != nil {
			return fmt.Errorf("bench-json: scalar observe: %w", err)
		}
	}
	elapsed := time.Since(start)
	scalarNs := float64(elapsed.Nanoseconds()) / engineCps
	addRun("observe/scalar", map[string]float64{
		"ns_per_checkpoint": scalarNs,
		"icp_per_sec":       1e9 / scalarNs,
	})
	fmt.Printf("bench-json: observe/scalar %.0f ns/checkpoint\n", scalarNs)

	// Serving engine, batch path: one shard-tick batch per group.
	sess := model.NewSession()
	batch := model.NewBatch(groupSize)
	var cp monitor.Checkpoint // reused staging slot, like the fleet pool's
	start = time.Now()
	for i := 0; i < engineCps/groupSize; i++ {
		batch.Reset()
		for j := 0; j < groupSize; j++ {
			cp = tickAt(i*groupSize + j)
			if err := batch.Stage(sess, &cp); err != nil {
				return fmt.Errorf("bench-json: stage: %w", err)
			}
		}
		if _, err := batch.Predict(); err != nil {
			return fmt.Errorf("bench-json: batch predict: %w", err)
		}
	}
	elapsed = time.Since(start)
	batchNs := float64(elapsed.Nanoseconds()) / float64(engineCps/groupSize*groupSize)
	addRun("observe/batch", map[string]float64{
		"ns_per_checkpoint": batchNs,
		"icp_per_sec":       1e9 / batchNs,
	})
	fmt.Printf("bench-json: observe/batch  %.0f ns/checkpoint\n", batchNs)

	// End-to-end fleet runs (simulator + serving + controller) per shard
	// count. Shard counts never change results, only wall-clock speed.
	shardCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, shards := range shardCounts {
		if seen[shards] {
			continue
		}
		seen[shards] = true
		start := time.Now()
		rep, err := fleet.Run(fleet.Config{
			Instances: instances,
			Shards:    shards,
			Duration:  duration,
			Seed:      seed,
			Model:     model,
		})
		if err != nil {
			return fmt.Errorf("bench-json: fleet run (%d shards): %w", shards, err)
		}
		elapsed := time.Since(start)
		icps := float64(rep.Checkpoints) / elapsed.Seconds()
		addRun(fmt.Sprintf("fleet/shards-%d", shards), map[string]float64{
			"icp_per_sec":       icps,
			"ns_per_checkpoint": 1e9 / icps,
			"checkpoints":       float64(rep.Checkpoints),
			"shards":            float64(shards),
		})
		fmt.Printf("bench-json: fleet/shards-%d %.0f instance-checkpoints/sec\n", shards, icps)
	}

	// Instrumentation overhead A/B: the same end-to-end run with the global
	// metrics gate on (the serving default) vs off, at a fixed shard count so
	// only the gate differs. The pair is what EXPERIMENTS.md quotes as the
	// measured observability overhead.
	for _, on := range []bool{true, false} {
		obs.SetEnabled(on)
		label := "fleet/obs-on"
		if !on {
			label = "fleet/obs-off"
		}
		start := time.Now()
		rep, err := fleet.Run(fleet.Config{
			Instances: instances,
			Shards:    4,
			Duration:  duration,
			Seed:      seed,
			Model:     model,
		})
		if err != nil {
			obs.SetEnabled(true)
			return fmt.Errorf("bench-json: fleet run (%s): %w", label, err)
		}
		elapsed := time.Since(start)
		icps := float64(rep.Checkpoints) / elapsed.Seconds()
		addRun(label, map[string]float64{
			"icp_per_sec":       icps,
			"ns_per_checkpoint": 1e9 / icps,
			"checkpoints":       float64(rep.Checkpoints),
			"shards":            4,
		})
		fmt.Printf("bench-json: %s %.0f instance-checkpoints/sec\n", label, icps)
	}
	obs.SetEnabled(true)

	if err := benchjson.Merge(path, out); err != nil {
		return err
	}
	fmt.Printf("bench-json: appended %d runs to %s\n", len(out.Runs), path)
	return nil
}
