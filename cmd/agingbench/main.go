// Command agingbench regenerates every table and figure of the paper's
// evaluation section on the simulated testbed and prints the measured values
// next to the numbers the paper reports:
//
//	Figure 1  – non-linear OS-level memory under a constant-rate leak
//	Figure 2  – OS vs JVM perspective of a periodic acquire/release pattern
//	Table 3   – experiment 4.1, deterministic aging (LinReg vs M5P)
//	Figure 3  – experiment 4.2, dynamic and variable aging
//	Table 4/Figure 4 – experiment 4.3, aging hidden in a periodic pattern
//	Figure 5  – experiment 4.4, aging caused by two resources
//
// Run all of them (a few minutes of CPU) or a single one:
//
//	agingbench -experiment all
//	agingbench -experiment 4.2 -seed 7
//
// Figure data can be dumped as CSV for plotting with -figures-dir.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"agingpred/internal/evalx"
	"agingpred/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agingbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agingbench", flag.ContinueOnError)
	var (
		which      = fs.String("experiment", "all", "which experiment to run: all, fig1, fig2, 4.1, 4.2, 4.3 or 4.4")
		seed       = fs.Uint64("seed", 1, "random seed for the whole benchmark campaign")
		figuresDir = fs.String("figures-dir", "", "if set, write the figure series (CSV, one file per figure) into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Seed: *seed}

	runAll := *which == "all"
	start := time.Now()
	if runAll || *which == "fig1" {
		if err := runFigure1(opts, *figuresDir); err != nil {
			return err
		}
	}
	if runAll || *which == "fig2" {
		if err := runFigure2(opts, *figuresDir); err != nil {
			return err
		}
	}
	if runAll || *which == "4.1" {
		if err := runExp41(opts); err != nil {
			return err
		}
	}
	if runAll || *which == "4.2" {
		if err := runExp42(opts, *figuresDir); err != nil {
			return err
		}
	}
	if runAll || *which == "4.3" {
		if err := runExp43(opts, *figuresDir); err != nil {
			return err
		}
	}
	if runAll || *which == "4.4" {
		if err := runExp44(opts, *figuresDir); err != nil {
			return err
		}
	}
	fmt.Printf("\ntotal wall-clock time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runFigure1(opts experiments.Options, dir string) error {
	fmt.Println("==================================================================")
	res, err := experiments.Figure1(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	if dir != "" {
		rows := [][]string{{"time_sec", "os_memory_mb", "jvm_heap_used_mb", "old_committed_mb"}}
		for _, p := range res.Points {
			rows = append(rows, []string{f(p.TimeSec), f(p.OSMemoryMB), f(p.JVMHeapUsedMB), f(p.OldCommittedMB)})
		}
		return writeCSV(filepath.Join(dir, "figure1.csv"), rows)
	}
	return nil
}

func runFigure2(opts experiments.Options, dir string) error {
	fmt.Println("==================================================================")
	res, err := experiments.Figure2(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	if dir != "" {
		rows := [][]string{{"time_sec", "os_memory_mb", "jvm_heap_used_mb"}}
		for _, p := range res.Points {
			rows = append(rows, []string{f(p.TimeSec), f(p.OSMemoryMB), f(p.JVMHeapUsedMB)})
		}
		return writeCSV(filepath.Join(dir, "figure2.csv"), rows)
	}
	return nil
}

func runExp41(opts experiments.Options) error {
	fmt.Println("==================================================================")
	res, err := experiments.Experiment41(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	fmt.Println("  paper reports (Table 3):")
	paper := experiments.PaperTable3()
	for _, key := range []string{"75EBs", "150EBs"} {
		fmt.Printf("    %s:\n", key)
		for _, v := range paper[key] {
			fmt.Printf("      %-9s Lin. Reg %-16s M5P %s\n", v.Metric,
				evalx.FormatDuration(v.LinReg), evalx.FormatDuration(v.M5P))
		}
	}
	return nil
}

func runExp42(opts experiments.Options, dir string) error {
	fmt.Println("==================================================================")
	res, err := experiments.Experiment42(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	fmt.Printf("  paper reports: %s\n", experiments.PaperExperiment42())
	if dir != "" {
		return writeTrace(filepath.Join(dir, "figure3.csv"), res.Trace)
	}
	return nil
}

func runExp43(opts experiments.Options, dir string) error {
	fmt.Println("==================================================================")
	res, err := experiments.Experiment43(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	fmt.Println("  paper reports (Table 4):")
	for _, v := range experiments.PaperTable4() {
		fmt.Printf("      %-9s Lin. Reg %-16s M5P %s\n", v.Metric,
			evalx.FormatDuration(v.LinReg), evalx.FormatDuration(v.M5P))
	}
	if dir != "" {
		return writeTrace(filepath.Join(dir, "figure4.csv"), res.Trace)
	}
	return nil
}

func runExp44(opts experiments.Options, dir string) error {
	fmt.Println("==================================================================")
	res, err := experiments.Experiment44(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	fmt.Printf("  paper reports: %s\n", experiments.PaperExperiment44())
	if dir != "" {
		return writeTrace(filepath.Join(dir, "figure5.csv"), res.Trace)
	}
	return nil
}

func writeTrace(path string, points []experiments.TracePoint) error {
	rows := [][]string{{"time_sec", "predicted_ttf_sec", "reference_ttf_sec", "tomcat_memory_mb", "heap_used_mb", "num_threads"}}
	for _, p := range points {
		rows = append(rows, []string{
			f(p.TimeSec), f(p.PredictedTTFSec), f(p.ReferenceTTFSec),
			f(p.TomcatMemoryMB), f(p.HeapUsedMB), f(p.NumThreads),
		})
	}
	return writeCSV(path, rows)
}

func writeCSV(path string, rows [][]string) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := file.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := csv.NewWriter(file)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	fmt.Printf("  wrote %s (%d rows)\n", path, len(rows)-1)
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
