// Command agingbench regenerates every table and figure of the paper's
// evaluation section on the simulated testbed and prints the measured values
// next to the numbers the paper reports:
//
//	Figure 1  – non-linear OS-level memory under a constant-rate leak
//	Figure 2  – OS vs JVM perspective of a periodic acquire/release pattern
//	Table 3   – experiment 4.1, deterministic aging (LinReg vs M5P)
//	Figure 3  – experiment 4.2, dynamic and variable aging
//	Table 4/Figure 4 – experiment 4.3, aging hidden in a periodic pattern
//	Figure 5  – experiment 4.4, aging caused by two resources
//
// Run all of them (a few minutes of CPU) or a single one:
//
//	agingbench -experiment all
//	agingbench -experiment 4.2 -seed 7
//
// Figure data can be dumped as CSV for plotting with -figures-dir.
//
// Beyond the paper's single-seed reproduction, the scenario engine sweeps
// whole scenario×seed matrices concurrently and reports mean ± stddev of
// every accuracy metric across seeds:
//
//	agingbench -experiment all -parallel 8 -seeds 1..8
//	agingbench -scenario bursty,trileak -seeds 1,5,9 -parallel 4
//	agingbench -list
//
// Matrix mode engages whenever -seeds, -scenario or -parallel is given; the
// registered scenarios are the four paper experiments (4.1–4.4) plus the
// extended workloads ("bursty", "trileak", "connleak", "fleet"). -list also
// shows the feature schema each scenario's models are built on, and -schema
// overrides that schema with any name from the features schema registry
// (e.g. "full+conn" to give every model the connection-speed derivatives).
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"agingpred"
	"agingpred/internal/evalx"
	"agingpred/internal/experiments"
	"agingpred/internal/features"
	"agingpred/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agingbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agingbench", flag.ContinueOnError)
	var (
		which      = fs.String("experiment", "all", "which experiment to run: all, fig1, fig2, 4.1, 4.2, 4.3 or 4.4")
		seed       = fs.Uint64("seed", 1, "random seed for the whole benchmark campaign")
		figuresDir = fs.String("figures-dir", "", "if set, write the figure series (CSV, one file per figure) into this directory")
		modelsDir  = fs.String("save-models", "", "if set, save the models experiment 4.1 trains as versioned artifacts (exp41-m5p.bin, exp41-linreg.bin) into this directory, for agingpredict/agingfleet -load (single-seed path only)")
		seeds      = fs.String("seeds", "", "matrix mode: seed sweep, \"N..M\" or comma list (e.g. 1..8)")
		scenario   = fs.String("scenario", "", "matrix mode: comma-separated scenario names, or \"all\" (default: derived from -experiment)")
		schema     = fs.String("schema", "", "feature schema overriding each experiment's default variable set (see -list for the registered names)")
		parallel   = fs.Int("parallel", 0, "matrix mode: worker pool size (default: number of CPUs)")
		verbose    = fs.Bool("v", false, "matrix mode: print every cell summary, not just the aggregate table")
		jsonOut    = fs.Bool("json", false, "matrix mode: emit machine-readable JSON (cells + aggregates) on stdout")
		list       = fs.Bool("list", false, "list the registered scenarios and exit")
		benchJSON  = fs.String("bench-json", "", "measure the fleet serving stack (end-to-end icp/sec per shard count, scalar vs batch ns/checkpoint) and append the datapoints to this trajectory file (e.g. BENCH_fleet.json), then exit")
		benchStamp = fs.String("bench-stamp", "", "stamp recorded with -bench-json datapoints (default: today's date)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with go tool pprof)")
		memProfile = fs.String("memprofile", "", "write an end-of-run heap profile to this file (inspect with go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	if *benchJSON != "" {
		stamp := *benchStamp
		if stamp == "" {
			stamp = time.Now().Format("2006-01-02")
		}
		return runBenchJSON(*benchJSON, *seed, stamp)
	}
	if *list {
		fmt.Printf("%-10s %-11s %s\n", "SCENARIO", "SCHEMA", "DESCRIPTION")
		for _, sc := range experiments.AllScenarios() {
			fmt.Printf("%-10s %-11s %s\n", sc.Name(), experiments.ScenarioSchema(sc), sc.Description())
		}
		fmt.Printf("\nregistered feature schemas: %s\n", strings.Join(features.SchemaNames(), ", "))
		return nil
	}
	if *parallel < 0 {
		return fmt.Errorf("negative -parallel %d", *parallel)
	}
	// Fail fast on an unknown schema, before any simulation runs, with the
	// list of valid names (LookupSchema's error carries it).
	if *schema != "" {
		if _, err := features.LookupSchema(*schema); err != nil {
			return fmt.Errorf("invalid -schema: %w", err)
		}
	}
	parallelSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			parallelSet = true
		}
	})
	if *seeds != "" || *scenario != "" || parallelSet || *jsonOut {
		if *figuresDir != "" {
			return fmt.Errorf("-figures-dir is only supported on the single-seed path; drop -seeds/-scenario/-parallel/-json to dump figure CSVs")
		}
		if *modelsDir != "" {
			return fmt.Errorf("-save-models is only supported on the single-seed path; drop -seeds/-scenario/-parallel/-json to save model artifacts")
		}
		return runMatrix(*which, *scenario, *seeds, *schema, *seed, *parallel, *verbose, *jsonOut)
	}
	if *modelsDir != "" && *which != "all" && *which != "4.1" {
		return fmt.Errorf("-save-models saves the models experiment 4.1 trains; run it with -experiment 4.1 (or all), not %q", *which)
	}
	switch *which {
	case "all", "fig1", "fig2", "4.1", "4.2", "4.3", "4.4":
	default:
		// Scenarios beyond the paper's experiments (bursty, trileak, ...)
		// have no dedicated single-seed printer; run them as a 1×1 matrix.
		if _, err := experiments.Lookup(*which); err == nil {
			if *figuresDir != "" {
				return fmt.Errorf("-figures-dir is not supported for scenario %q; it applies to fig1/fig2 and experiments 4.1-4.4 on the single-seed path", *which)
			}
			return runMatrix(*which, "", "", *schema, *seed, 1, true, false)
		}
		return fmt.Errorf("unknown experiment %q: want all, fig1, fig2 or a registered scenario (known: %s)", *which, strings.Join(experiments.ScenarioNames(), ", "))
	}
	opts := experiments.Options{Seed: *seed, Schema: *schema}

	runAll := *which == "all"
	start := time.Now()
	if runAll || *which == "fig1" {
		if err := runFigure1(opts, *figuresDir); err != nil {
			return err
		}
	}
	if runAll || *which == "fig2" {
		if err := runFigure2(opts, *figuresDir); err != nil {
			return err
		}
	}
	if runAll || *which == "4.1" {
		if err := runExp41(opts, *modelsDir); err != nil {
			return err
		}
	}
	if runAll || *which == "4.2" {
		if err := runExp42(opts, *figuresDir); err != nil {
			return err
		}
	}
	if runAll || *which == "4.3" {
		if err := runExp43(opts, *figuresDir); err != nil {
			return err
		}
	}
	if runAll || *which == "4.4" {
		if err := runExp44(opts, *figuresDir); err != nil {
			return err
		}
	}
	fmt.Printf("\ntotal wall-clock time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runMatrix is the scenario-engine path: it resolves the scenario list and
// seed sweep, runs every cell on a worker pool, and prints the cross-seed
// aggregate statistics (human table, or machine-readable JSON with -json).
func runMatrix(which, scenario, seedsFlag, schema string, seed uint64, workers int, verbose, jsonOut bool) error {
	names := scenarioNames(which, scenario)
	for _, name := range names {
		if name == "fig1" || name == "fig2" {
			return fmt.Errorf("%s is a figure example without accuracy metrics and cannot be swept; run it on the single-seed path (-experiment %s without -seeds/-scenario/-parallel/-json)", name, name)
		}
	}
	scenarios, err := experiments.LookupAll(names)
	if err != nil {
		return err
	}
	if seedsFlag == "" {
		seedsFlag = strconv.FormatUint(seed, 10)
	}
	seedList, err := experiments.ParseSeedRange(seedsFlag)
	if err != nil {
		return err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// With -json stdout carries only the JSON document; progress goes to
	// stderr so pipelines stay clean.
	progress := os.Stdout
	if jsonOut {
		progress = os.Stderr
	}
	fmt.Fprintf(progress, "running %d scenarios × %d seeds on %d workers...\n", len(scenarios), len(seedList), workers)
	engine := &experiments.Engine{Opts: experiments.Options{Schema: schema}}
	res, err := engine.RunMatrix(ctx, scenarios, seedList, workers)
	if res != nil && jsonOut {
		if jerr := writeMatrixJSON(os.Stdout, res); jerr != nil {
			return jerr
		}
	}
	if res != nil && !jsonOut {
		if verbose {
			for i := range res.Cells {
				cell := &res.Cells[i]
				if cell.Err != nil {
					continue
				}
				fmt.Println("==================================================================")
				fmt.Printf("--- %s, seed %d (%v)\n%s", cell.Scenario, cell.Seed, cell.Elapsed.Round(time.Millisecond), cell.Summary)
			}
			fmt.Println("==================================================================")
		}
		fmt.Print(res.String())
		// Throughput counts only the cells that actually completed, so a
		// cancelled sweep does not inflate the rate with never-run cells.
		if done := len(res.Cells) - len(res.FailedCells()); done > 0 && res.Elapsed > 0 {
			fmt.Printf("throughput: %.2f cells/sec\n", float64(done)/res.Elapsed.Seconds())
		}
	}
	if err != nil {
		return err
	}
	if failed := res.FailedCells(); len(failed) > 0 {
		return fmt.Errorf("%d of %d cells failed", len(failed), len(res.Cells))
	}
	return nil
}

// The -json document mirrors MatrixResult with stable snake_case keys, so
// bench trajectories (BENCH_*.json) are parsed, not scraped from the human
// table.
type matrixJSON struct {
	Scenarios   []string        `json:"scenarios"`
	Seeds       []uint64        `json:"seeds"`
	Workers     int             `json:"workers"`
	ElapsedSec  float64         `json:"elapsed_sec"`
	CellsPerSec float64         `json:"cells_per_sec"`
	Cells       []cellJSON      `json:"cells"`
	Aggregates  []aggregateJSON `json:"aggregates"`
}

type cellJSON struct {
	Scenario   string                  `json:"scenario"`
	Seed       uint64                  `json:"seed"`
	ElapsedSec float64                 `json:"elapsed_sec"`
	Error      string                  `json:"error,omitempty"`
	Metrics    map[string]metricReport `json:"metrics,omitempty"`
}

type metricReport struct {
	N          int     `json:"n"`
	MAESec     float64 `json:"mae_sec"`
	SMAESec    float64 `json:"smae_sec"`
	PreMAESec  float64 `json:"pre_mae_sec"`
	PostMAESec float64 `json:"post_mae_sec"`
}

type aggregateJSON struct {
	Scenario string   `json:"scenario"`
	Metric   string   `json:"metric"`
	MAE      statJSON `json:"mae"`
	SMAE     statJSON `json:"smae"`
	PreMAE   statJSON `json:"pre_mae"`
	PostMAE  statJSON `json:"post_mae"`
}

type statJSON struct {
	N         int     `json:"n"`
	MeanSec   float64 `json:"mean_sec"`
	StddevSec float64 `json:"stddev_sec"`
	MinSec    float64 `json:"min_sec"`
	MaxSec    float64 `json:"max_sec"`
}

func toStatJSON(s experiments.Stat) statJSON {
	return statJSON{N: s.N, MeanSec: s.Mean, StddevSec: s.Stddev, MinSec: s.Min, MaxSec: s.Max}
}

// writeMatrixJSON renders the whole matrix result — per-cell metrics and
// cross-seed aggregates — as one indented JSON document.
func writeMatrixJSON(w io.Writer, res *experiments.MatrixResult) error {
	doc := matrixJSON{
		Scenarios:  res.Scenarios,
		Seeds:      res.Seeds,
		Workers:    res.Workers,
		ElapsedSec: res.Elapsed.Seconds(),
		Cells:      make([]cellJSON, 0, len(res.Cells)),
		Aggregates: make([]aggregateJSON, 0, len(res.Aggregates)),
	}
	if done := len(res.Cells) - len(res.FailedCells()); done > 0 && res.Elapsed > 0 {
		doc.CellsPerSec = float64(done) / res.Elapsed.Seconds()
	}
	for i := range res.Cells {
		cell := &res.Cells[i]
		cj := cellJSON{Scenario: cell.Scenario, Seed: cell.Seed, ElapsedSec: cell.Elapsed.Seconds()}
		if cell.Err != nil {
			cj.Error = cell.Err.Error()
		} else {
			cj.Metrics = make(map[string]metricReport, len(cell.Metrics))
			for name, rep := range cell.Metrics {
				cj.Metrics[name] = metricReport{
					N: rep.N, MAESec: rep.MAE, SMAESec: rep.SMAE,
					PreMAESec: rep.PreMAE, PostMAESec: rep.PostMAE,
				}
			}
		}
		doc.Cells = append(doc.Cells, cj)
	}
	for _, agg := range res.Aggregates {
		doc.Aggregates = append(doc.Aggregates, aggregateJSON{
			Scenario: agg.Scenario,
			Metric:   agg.Metric,
			MAE:      toStatJSON(agg.MAE),
			SMAE:     toStatJSON(agg.SMAE),
			PreMAE:   toStatJSON(agg.PreMAE),
			PostMAE:  toStatJSON(agg.PostMAE),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// scenarioNames derives the scenario list from the -scenario flag, falling
// back to -experiment ("all" means every registered scenario; the figure
// examples have no accuracy metrics and stay on the single-seed path).
func scenarioNames(which, scenario string) []string {
	raw := scenario
	if raw == "" {
		raw = which
	}
	if raw == "" || raw == "all" {
		return []string{"all"}
	}
	parts := strings.Split(raw, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func runFigure1(opts experiments.Options, dir string) error {
	fmt.Println("==================================================================")
	res, err := experiments.Figure1(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	if dir != "" {
		rows := [][]string{{"time_sec", "os_memory_mb", "jvm_heap_used_mb", "old_committed_mb"}}
		for _, p := range res.Points {
			rows = append(rows, []string{f(p.TimeSec), f(p.OSMemoryMB), f(p.JVMHeapUsedMB), f(p.OldCommittedMB)})
		}
		return writeCSV(filepath.Join(dir, "figure1.csv"), rows)
	}
	return nil
}

func runFigure2(opts experiments.Options, dir string) error {
	fmt.Println("==================================================================")
	res, err := experiments.Figure2(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	if dir != "" {
		rows := [][]string{{"time_sec", "os_memory_mb", "jvm_heap_used_mb"}}
		for _, p := range res.Points {
			rows = append(rows, []string{f(p.TimeSec), f(p.OSMemoryMB), f(p.JVMHeapUsedMB)})
		}
		return writeCSV(filepath.Join(dir, "figure2.csv"), rows)
	}
	return nil
}

func runExp41(opts experiments.Options, modelsDir string) error {
	fmt.Println("==================================================================")
	res, err := experiments.Experiment41(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	if modelsDir != "" {
		if err := os.MkdirAll(modelsDir, 0o755); err != nil {
			return err
		}
		for _, m := range []struct {
			name  string
			model *agingpred.Model
		}{{"exp41-m5p.bin", res.M5PModel}, {"exp41-linreg.bin", res.LinRegModel}} {
			path := filepath.Join(modelsDir, m.name)
			if err := agingpred.SaveModel(path, m.model); err != nil {
				return err
			}
			fmt.Printf("  saved %s (%s); serve it with agingpredict/agingfleet -load\n", path, m.model.Report())
		}
	}
	fmt.Println("  paper reports (Table 3):")
	paper := experiments.PaperTable3()
	for _, key := range []string{"75EBs", "150EBs"} {
		fmt.Printf("    %s:\n", key)
		for _, v := range paper[key] {
			fmt.Printf("      %-9s Lin. Reg %-16s M5P %s\n", v.Metric,
				evalx.FormatDuration(v.LinReg), evalx.FormatDuration(v.M5P))
		}
	}
	return nil
}

func runExp42(opts experiments.Options, dir string) error {
	fmt.Println("==================================================================")
	res, err := experiments.Experiment42(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	fmt.Printf("  paper reports: %s\n", experiments.PaperExperiment42())
	if dir != "" {
		return writeTrace(filepath.Join(dir, "figure3.csv"), res.Trace)
	}
	return nil
}

func runExp43(opts experiments.Options, dir string) error {
	fmt.Println("==================================================================")
	res, err := experiments.Experiment43(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	fmt.Println("  paper reports (Table 4):")
	for _, v := range experiments.PaperTable4() {
		fmt.Printf("      %-9s Lin. Reg %-16s M5P %s\n", v.Metric,
			evalx.FormatDuration(v.LinReg), evalx.FormatDuration(v.M5P))
	}
	if dir != "" {
		return writeTrace(filepath.Join(dir, "figure4.csv"), res.Trace)
	}
	return nil
}

func runExp44(opts experiments.Options, dir string) error {
	fmt.Println("==================================================================")
	res, err := experiments.Experiment44(opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	fmt.Printf("  paper reports: %s\n", experiments.PaperExperiment44())
	if dir != "" {
		return writeTrace(filepath.Join(dir, "figure5.csv"), res.Trace)
	}
	return nil
}

func writeTrace(path string, points []experiments.TracePoint) error {
	rows := [][]string{{"time_sec", "predicted_ttf_sec", "reference_ttf_sec", "tomcat_memory_mb", "heap_used_mb", "num_threads"}}
	for _, p := range points {
		rows = append(rows, []string{
			f(p.TimeSec), f(p.PredictedTTFSec), f(p.ReferenceTTFSec),
			f(p.TomcatMemoryMB), f(p.HeapUsedMB), f(p.NumThreads),
		})
	}
	return writeCSV(path, rows)
}

func writeCSV(path string, rows [][]string) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := file.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := csv.NewWriter(file)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	fmt.Printf("  wrote %s (%d rows)\n", path, len(rows)-1)
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
