// Command agingsim runs one execution of the simulated three-tier testbed
// (TPC-W workload → Tomcat-like application server → generational JVM heap)
// with configurable aging-fault injection, and writes the resulting
// checkpoint dataset — the Table 2 variables plus the time-to-failure label —
// as CSV or ARFF.
//
// Typical usage, reproducing one of the paper's training executions (100
// emulated browsers, 1 MB memory leak every ~N=30 search-servlet hits, run
// until the server crashes):
//
//	agingsim -ebs 100 -leak-n 30 -o train-100eb.csv
//
// A thread-leak execution (every U(0,T) seconds leak U(0,M) threads):
//
//	agingsim -ebs 100 -thread-m 30 -thread-t 90 -o threads.csv
//
// With -load, a saved model artifact (agingpredict -save / agingfleet -save)
// scores the simulated run on-line as it is exported: the output grows a
// predicted_ttf_sec column holding the model's per-checkpoint prediction,
// so a run can be simulated and scored in one step:
//
//	agingsim -ebs 150 -leak-n 30 -load model.bin -o scored.csv
//
// The resulting files feed cmd/agingpredict.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"agingpred"
	"agingpred/internal/dataset"
	"agingpred/internal/features"
	"agingpred/internal/injector"
	"agingpred/internal/testbed"
	"agingpred/internal/tpcw"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agingsim:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("agingsim", flag.ContinueOnError)
	var (
		ebs      = fs.Int("ebs", 100, "number of concurrent emulated browsers (constant for the whole run)")
		mixName  = fs.String("mix", "shopping", "TPC-W navigation mix: browsing, shopping or ordering")
		seed     = fs.Uint64("seed", 1, "random seed (same seed + same flags = identical run)")
		duration = fs.Duration("max-duration", 8*time.Hour, "stop the run after this simulated time even without a crash")
		interval = fs.Duration("interval", 15*time.Second, "checkpoint (monitoring) interval")
		leakN    = fs.Int("leak-n", 0, "memory leak rate parameter N (leak 1 MB every ~N search-servlet hits); 0 disables memory injection")
		leakMB   = fs.Float64("leak-mb", 1, "MB leaked per memory injection")
		threadM  = fs.Int("thread-m", 0, "thread leak parameter M (leak U(0,M) threads per injection); 0 disables thread injection")
		threadT  = fs.Int("thread-t", 60, "thread leak parameter T (a new injection every U(0,T) seconds)")
		varSet   = fs.String("variables", "full", "feature schema to export (full, no-heap, heap-focus, full+conn, or any registered schema)")
		window   = fs.Int("window", features.DefaultWindowLength, "sliding-window length, in checkpoints, for the derived speed features (resources with a schema-pinned per-resource window, e.g. full+conn's connection speed, keep theirs)")
		loadPath = fs.String("load", "", "score the run with a saved model artifact: adds a predicted_ttf_sec column with the model's on-line per-checkpoint prediction")
		output   = fs.String("o", "-", "output file (\"-\" = stdout)")
		arff     = fs.Bool("arff", false, "write WEKA ARFF instead of CSV")
		name     = fs.String("name", "", "run name used as the dataset relation (default derived from the flags)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mix, err := tpcw.MixByName(*mixName)
	if err != nil {
		return err
	}
	schema, err := features.LookupSchema(*varSet)
	if err != nil {
		return fmt.Errorf("invalid -variables: %w", err)
	}
	// Re-window the schema only when -window was explicitly given, so a
	// schema carrying its own default window keeps it (the same contract
	// core.Config honours).
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "window" {
			schema = schema.WithWindow(*window)
		}
	})

	runName := *name
	if runName == "" {
		runName = fmt.Sprintf("agingsim-%dEB-N%d-M%d", *ebs, *leakN, *threadM)
	}
	cfg := testbed.RunConfig{
		Name:               runName,
		Seed:               *seed,
		EBs:                *ebs,
		Mix:                mix,
		LeakAmountMB:       *leakMB,
		MaxDuration:        *duration,
		CheckpointInterval: *interval,
	}
	cfg.Phases = buildPhases(*leakN, *threadM, *threadT)

	fmt.Fprintf(os.Stderr, "running %s: %d EBs, %s mix, leak N=%d, threads (M=%d, T=%d), up to %v...\n",
		runName, *ebs, mix.Name, *leakN, *threadM, *threadT, *duration)
	res, err := testbed.Run(cfg)
	if err != nil {
		return err
	}
	if res.Crashed {
		fmt.Fprintf(os.Stderr, "server crashed at %v (%s); %d checkpoints collected\n",
			res.CrashTime, res.CrashReason, res.Series.Len())
	} else {
		fmt.Fprintf(os.Stderr, "server survived %v; %d checkpoints collected (labels set to the 3-hour horizon)\n",
			*duration, res.Series.Len())
	}

	ds, err := schema.Extract(res.Series)
	if err != nil {
		return err
	}
	if *loadPath != "" {
		model, err := agingpred.LoadModel(*loadPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scoring the run with %s: %s\n", *loadPath, model.Report())
		if ds, err = scoreDataset(ds, model, res.Series); err != nil {
			return err
		}
	}

	out := os.Stdout
	if *output != "-" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		out = f
	}
	if *arff {
		return ds.WriteARFF(out)
	}
	return ds.WriteCSV(out)
}

// scoreDataset replays the simulated run through one session of the loaded
// model and returns the dataset widened by a predicted_ttf_sec column, one
// on-line prediction per checkpoint. The model predicts on its own schema,
// so the exported -variables schema is free to differ.
func scoreDataset(ds *dataset.Dataset, model *agingpred.Model, series *agingpred.Series) (*dataset.Dataset, error) {
	const predCol = "predicted_ttf_sec"
	out, err := dataset.New(ds.Relation, append(ds.Attrs(), predCol), ds.Target())
	if err != nil {
		return nil, fmt.Errorf("adding the %s column: %w", predCol, err)
	}
	sess := model.NewSession()
	row := make([]float64, ds.NumAttrs()+1)
	for i, cp := range series.Checkpoints {
		pred, err := sess.Observe(cp)
		if err != nil {
			return nil, fmt.Errorf("scoring checkpoint at t=%v: %w", cp.TimeSec, err)
		}
		copy(row, ds.Row(i))
		row[len(row)-1] = pred.TTFSec
		if err := out.Append(row, ds.TargetValue(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// buildPhases turns the injection flags into a single-phase schedule. Both
// faults may be active at once (the two-resource scenario of experiment 4.4).
func buildPhases(leakN, threadM, threadT int) []injector.Phase {
	mode := injector.MemoryOff
	if leakN > 0 {
		mode = injector.MemoryLeak
	}
	if leakN <= 0 && threadM <= 0 {
		return testbed.NoInjectionPhases()
	}
	return []injector.Phase{{
		Name:       "injection",
		MemoryMode: mode,
		MemoryN:    leakN,
		ThreadM:    threadM,
		ThreadT:    threadT,
	}}
}
