package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"agingpred"
)

// obsMux builds the observability endpoints served under -listen:
//
//	/metrics  — the process-wide registry in Prometheus text format
//	/healthz  — JSON liveness: uptime plus the serving epoch and fleet
//	            progress, read straight from the registry
//	/debug/pprof/... — the standard runtime profiles
//
// Everything is read-only and observation-only: scraping never touches the
// deterministic run. Split from startObsServer so the handlers are testable
// without a listener.
func obsMux(start time.Time) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		agingpred.WriteMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		epoch := 1.0
		if v, ok := agingpred.Metrics().Value("agingpred_current_epoch"); ok && v >= 1 {
			epoch = v
		}
		simTime, _ := agingpred.Metrics().Value("agingpred_fleet_sim_time_seconds")
		ckpts, _ := agingpred.Metrics().Value("agingpred_fleet_checkpoints_total")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":       "ok",
			"uptime_sec":   time.Since(start).Seconds(),
			"epoch":        int(epoch),
			"sim_time_sec": simTime,
			"checkpoints":  int64(ckpts),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startObsServer binds addr and serves the observability mux in the
// background, returning the bound address (useful with ":0") and a stopper.
// The serving fleet never blocks on a scrape; slow clients only delay their
// own responses.
func startObsServer(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: obsMux(time.Now())}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
