package main

import (
	"net/http"
	"time"

	"agingpred/internal/serve/admin"
)

// The observability endpoints served under -listen (/metrics, /healthz,
// /debug/pprof) live in internal/serve/admin, shared with agingserve so every
// daemon exposes the same surface. The thin aliases below keep this command's
// tests pinning the behavior where the flag is.

// obsMux builds the observability endpoints served under -listen.
func obsMux(start time.Time) *http.ServeMux {
	return admin.Mux(start)
}

// startObsServer binds addr and serves the observability mux in the
// background, returning the bound address (useful with ":0") and a stopper.
func startObsServer(addr string) (string, func(), error) {
	return admin.Start(addr)
}
