// Command agingfleet runs the fleet subsystem: a sharded online
// aging-prediction service over thousands of concurrently-simulated
// application-server instances with heterogeneous leak profiles, closing the
// monitor → predict → rejuvenate loop at fleet scale.
//
// A typical simulated day over a thousand servers:
//
//	agingfleet -instances 1000 -shards 8
//
// The shared model's feature schema comes from the features schema registry:
// -schema sets it fleet-wide, and -class-schema overrides it per instance
// class (one extra training run per distinct schema), e.g.
//
//	agingfleet -instances 1000 -class-schema conn-leak=full+conn
//
// gives the connection-leak class the connection-speed derivatives the
// paper's Table 2 set lacks while the rest of the fleet stays on "full".
//
// The run is deterministic in -seed: the same seed produces a byte-identical
// -json summary, and changing -shards changes nothing but the echoed
// "shards" field. Human-readable output is the default; -json emits the
// machine-readable report on stdout (progress goes to stderr, so the JSON
// stays clean for pipelines).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"agingpred/internal/features"
	"agingpred/internal/fleet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agingfleet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agingfleet", flag.ContinueOnError)
	var (
		instances = fs.Int("instances", 100, "fleet size (simulated application-server instances)")
		shards    = fs.Int("shards", runtime.GOMAXPROCS(0), "predictor worker shards (affects speed only, never results)")
		duration  = fs.Duration("duration", 24*time.Hour, "simulated serving time")
		seed      = fs.Uint64("seed", 1, "seed for the whole run (population, workloads, training)")
		threshold = fs.Duration("threshold", 10*time.Minute, "predicted-TTF level below which an instance alerts")
		budget    = fs.Int("budget", 0, "max concurrent rejuvenations (0 = instances/10)")
		schema    = fs.String("schema", "", "feature schema of the shared predictor (default \"full\"; see the features schema registry)")
		classes   = fs.String("class-schema", "", "per-class schema overrides, \"class=schema\" comma list (e.g. conn-leak=full+conn)")
		jsonOut   = fs.Bool("json", false, "emit the machine-readable JSON report on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Resolve schema flags before any training starts; unknown names fail
	// fast with the list of valid ones.
	var fleetSchema *features.Schema
	if *schema != "" {
		s, err := features.LookupSchema(*schema)
		if err != nil {
			return fmt.Errorf("invalid -schema: %w", err)
		}
		fleetSchema = s
	}
	classSchemas, err := parseClassSchemas(*classes)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Fprintf(os.Stderr, "training the shared predictor and serving %d instances on %d shards (%v simulated)...\n",
		*instances, *shards, *duration)
	start := time.Now()
	rep, err := fleet.Run(fleet.Config{
		Instances:          *instances,
		Shards:             *shards,
		Duration:           *duration,
		Seed:               *seed,
		TTFThreshold:       *threshold,
		RejuvenationBudget: *budget,
		Schema:             fleetSchema,
		ClassSchemas:       classSchemas,
		Ctx:                ctx,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	if *jsonOut {
		js, err := rep.JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(js)
		fmt.Println()
		fmt.Fprintf(os.Stderr, "wall-clock time: %v (%.0f instance-checkpoints/sec)\n",
			elapsed, float64(rep.Checkpoints)/elapsed.Seconds())
		return nil
	}
	fmt.Print(rep.String())
	fmt.Printf("  wall-clock time: %v (%.0f instance-checkpoints/sec)\n",
		elapsed, float64(rep.Checkpoints)/elapsed.Seconds())
	return nil
}

// parseClassSchemas parses the -class-schema flag: a comma-separated list of
// "class=schema" pairs, both resolved against their registries so typos fail
// fast with the valid names.
func parseClassSchemas(s string) (map[fleet.Class]*features.Schema, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[fleet.Class]*features.Schema)
	for _, pair := range strings.Split(s, ",") {
		name, schemaName, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("invalid -class-schema entry %q: want class=schema (classes: %s; schemas: %s)",
				pair, strings.Join(fleet.ClassNames(), ", "), strings.Join(features.SchemaNames(), ", "))
		}
		class, err := fleet.ParseClass(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("invalid -class-schema: %w", err)
		}
		if _, dup := out[class]; dup {
			return nil, fmt.Errorf("invalid -class-schema: class %q listed twice", class)
		}
		schema, err := features.LookupSchema(strings.TrimSpace(schemaName))
		if err != nil {
			return nil, fmt.Errorf("invalid -class-schema: %w", err)
		}
		out[class] = schema
	}
	return out, nil
}
