// Command agingfleet runs the fleet subsystem: a sharded online
// aging-prediction service over thousands of concurrently-simulated
// application-server instances with heterogeneous leak profiles, closing the
// monitor → predict → rejuvenate loop at fleet scale.
//
// A typical simulated day over a thousand servers:
//
//	agingfleet -instances 1000 -shards 8
//
// The shared model's feature schema comes from the features schema registry:
// -schema sets it fleet-wide, and -class-schema overrides it per instance
// class (one extra training run per distinct schema), e.g.
//
//	agingfleet -instances 1000 -class-schema conn-leak=full+conn
//
// gives the connection-leak class the connection-speed derivatives the
// paper's Table 2 set lacks while the rest of the fleet stays on "full".
//
// The shared model persists as a versioned artifact: -save trains it and
// writes it to disk, and -load serves a previously-saved artifact (e.g. from
// `agingpredict -save` or an earlier `agingfleet -save`) without retraining:
//
//	agingfleet -instances 1000 -save model.bin     # train once, keep the artifact
//	agingfleet -instances 5000 -load model.bin     # serve it, no retraining
//
// -adaptive turns on adaptive serving (the paper's titular contribution at
// fleet scale): every instance's predictions are scored against its
// eventually-observed crash time, a drift detector watches the resolved
// error, and a background worker retrains the shared model on the crashed
// runs the fleet itself collected, hot-swapping each new model epoch under
// the live sessions. The report then carries the per-epoch breakdown:
//
//	agingfleet -instances 1000 -shards 8 -adaptive
//
// The drift detector auto-calibrates its healthy-MAE baseline per epoch;
// when serving a -load-ed artifact that may already be stale, pin the
// target instead (auto-calibration would absorb the misfit):
//
//	agingfleet -instances 1000 -load model.bin -adaptive -drift-baseline 15m
//
// The run is observable while it happens: -listen serves the process-wide
// metrics registry in Prometheus text format at /metrics, a JSON liveness
// probe with the current model epoch at /healthz, and the standard runtime
// profiles under /debug/pprof; -events journals the run's discrete lifecycle
// events (crashes, rejuvenation alerts/dispatches/completions, drift trips,
// retrains, epoch swaps) as JSONL:
//
//	agingfleet -instances 1000 -adaptive -listen :9090 -events run.jsonl
//
// The run is deterministic in -seed: the same seed produces a byte-identical
// -json summary, and changing -shards changes nothing but the echoed
// "shards" field — with or without -adaptive (the retrain schedule is
// simulated time, not wall-clock), and with or without scrapers attached
// (metrics are observation-only). The -events journal is itself
// deterministic: same seed, same bytes, whatever the shard count.
// Human-readable output is the default; -json emits the machine-readable
// report on stdout with a final metrics snapshot under "metrics" (progress
// goes to stderr, so the JSON stays clean for pipelines).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"agingpred"
	"agingpred/internal/adapt"
	"agingpred/internal/features"
	"agingpred/internal/fleet"
	"agingpred/internal/prof"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agingfleet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agingfleet", flag.ContinueOnError)
	var (
		instances  = fs.Int("instances", 100, "fleet size (simulated application-server instances)")
		shards     = fs.Int("shards", runtime.GOMAXPROCS(0), "predictor worker shards (affects speed only, never results)")
		duration   = fs.Duration("duration", 24*time.Hour, "simulated serving time")
		seed       = fs.Uint64("seed", 1, "seed for the whole run (population, workloads, training)")
		threshold  = fs.Duration("threshold", 10*time.Minute, "predicted-TTF level below which an instance alerts")
		budget     = fs.Int("budget", 0, "max concurrent rejuvenations (0 = instances/10)")
		schema     = fs.String("schema", "", "feature schema of the shared model (default \"full\"; see the features schema registry)")
		classes    = fs.String("class-schema", "", "per-class schema overrides, \"class=schema\" comma list (e.g. conn-leak=full+conn)")
		loadPath   = fs.String("load", "", "serve a saved model artifact instead of training the shared model")
		savePath   = fs.String("save", "", "train the shared model, write it as a versioned artifact to this file, then serve it")
		adaptive   = fs.Bool("adaptive", false, "adaptive serving: drift detection, background retraining on collected crashes, hot model-epoch swaps")
		retrainLat = fs.Duration("retrain-latency", 0, "simulated time between a drift-triggered retrain and its epoch going live (0 = 10m; needs -adaptive)")
		baseline   = fs.Duration("drift-baseline", 0, "pin the healthy prediction MAE the drift detector compares against (0 = auto-calibrate per epoch; set this when -load-ing an artifact that may already be stale, since auto-calibration would absorb its misfit; needs -adaptive)")
		jsonOut    = fs.Bool("json", false, "emit the machine-readable JSON report on stdout (with a final metrics snapshot under \"metrics\")")
		listen     = fs.String("listen", "", "serve /metrics (Prometheus text format), /healthz and /debug/pprof on this address while the fleet runs (e.g. :9090)")
		events     = fs.String("events", "", "write the run's lifecycle events (crashes, rejuvenations, drift trips, retrains, epoch swaps) as JSONL to this file")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with go tool pprof)")
		memProfile = fs.String("memprofile", "", "write an end-of-run heap profile to this file (inspect with go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	// Resolve schema flags before any training starts; unknown names fail
	// fast with the list of valid ones.
	var fleetSchema *features.Schema
	if *schema != "" {
		s, err := features.LookupSchema(*schema)
		if err != nil {
			return fmt.Errorf("invalid -schema: %w", err)
		}
		fleetSchema = s
	}
	classSchemas, err := parseClassSchemas(*classes)
	if err != nil {
		return err
	}
	if *loadPath != "" {
		if *savePath != "" {
			return errors.New("-save with -load would just copy the artifact; nothing is trained")
		}
		if *schema != "" || *classes != "" {
			return errors.New("-load serves the artifact's own schema; it cannot be combined with -schema or -class-schema")
		}
	}
	if (*retrainLat != 0 || *baseline != 0) && !*adaptive {
		return errors.New("-retrain-latency and -drift-baseline only apply to adaptive serving; add -adaptive")
	}
	if *baseline < 0 {
		return errors.New("-drift-baseline must be positive")
	}
	if *savePath != "" && *classes != "" {
		// The artifact holds only the base model, and -load rejects
		// -class-schema, so the saved file could never reproduce this run —
		// and the per-class overrides would re-simulate the training series
		// the base model was just trained on. Refuse the half-meaningful
		// combination.
		return errors.New("-save persists only the shared base model and cannot be combined with -class-schema; save without overrides, then serve with -load")
	}

	// Resolve the shared model up front when an artifact is involved; the
	// plain path leaves training to fleet.Run as before.
	var model *agingpred.Model
	switch {
	case *loadPath != "":
		model, err = agingpred.LoadModel(*loadPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded %s: %s\n", *loadPath, model.Report())
	case *savePath != "":
		fmt.Fprintf(os.Stderr, "training the shared model...\n")
		model, err = fleet.TrainModelSchema(*seed, fleetSchema)
		if err != nil {
			return err
		}
		if err := agingpred.SaveModel(*savePath, model); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved model to %s (format v%d); future runs can -load it\n",
			*savePath, agingpred.ModelFormatVersion)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *listen != "" {
		addr, stopSrv, err := startObsServer(*listen)
		if err != nil {
			return fmt.Errorf("-listen: %w", err)
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "serving /metrics, /healthz and /debug/pprof on http://%s\n", addr)
	}
	var jnl *agingpred.EventJournal
	if *events != "" {
		var err error
		jnl, err = agingpred.CreateEventJournal(*events)
		if err != nil {
			return fmt.Errorf("-events: %w", err)
		}
	}

	verb := "training the shared model and serving"
	if model != nil {
		verb = "serving"
	}
	fmt.Fprintf(os.Stderr, "%s %d instances on %d shards (%v simulated)...\n",
		verb, *instances, *shards, *duration)
	start := time.Now()
	rep, err := fleet.Run(fleet.Config{
		Instances:          *instances,
		Shards:             *shards,
		Duration:           *duration,
		Seed:               *seed,
		TTFThreshold:       *threshold,
		RejuvenationBudget: *budget,
		Model:              model,
		Schema:             fleetSchema,
		ClassSchemas:       classSchemas,
		Adaptive:           *adaptive,
		Adapt:              adapt.Config{Detector: adapt.DetectorConfig{BaselineSec: baseline.Seconds()}},
		RetrainLatency:     *retrainLat,
		Journal:            jnl,
		Ctx:                ctx,
	})
	if jnl != nil {
		if cerr := jnl.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("writing -events journal: %w", cerr)
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// An interrupt mid-run is a clean operator-requested shutdown, not
			// a failure; the CI smoke test relies on the zero exit status.
			fmt.Fprintf(os.Stderr, "agingfleet: %v\n", err)
			return nil
		}
		return err
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	if *jsonOut {
		// The report stays the deterministic core; the wall-clock-bearing
		// metrics snapshot rides alongside it under its own key.
		js, err := json.MarshalIndent(struct {
			*fleet.Report
			Metrics map[string]float64 `json:"metrics"`
		}{rep, agingpred.Metrics().Snapshot()}, "", "  ")
		if err != nil {
			return err
		}
		os.Stdout.Write(js)
		fmt.Println()
		fmt.Fprintf(os.Stderr, "wall-clock time: %v (%.0f instance-checkpoints/sec)\n",
			elapsed, float64(rep.Checkpoints)/elapsed.Seconds())
		return nil
	}
	fmt.Print(rep.String())
	fmt.Printf("  wall-clock time: %v (%.0f instance-checkpoints/sec)\n",
		elapsed, float64(rep.Checkpoints)/elapsed.Seconds())
	return nil
}

// parseClassSchemas parses the -class-schema flag: a comma-separated list of
// "class=schema" pairs, both resolved against their registries so typos fail
// fast with the valid names.
func parseClassSchemas(s string) (map[fleet.Class]*features.Schema, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[fleet.Class]*features.Schema)
	for _, pair := range strings.Split(s, ",") {
		name, schemaName, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("invalid -class-schema entry %q: want class=schema (classes: %s; schemas: %s)",
				pair, strings.Join(fleet.ClassNames(), ", "), strings.Join(features.SchemaNames(), ", "))
		}
		class, err := fleet.ParseClass(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("invalid -class-schema: %w", err)
		}
		if _, dup := out[class]; dup {
			return nil, fmt.Errorf("invalid -class-schema: class %q listed twice", class)
		}
		schema, err := features.LookupSchema(strings.TrimSpace(schemaName))
		if err != nil {
			return nil, fmt.Errorf("invalid -class-schema: %w", err)
		}
		out[class] = schema
	}
	return out, nil
}
