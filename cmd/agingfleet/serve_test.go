package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"agingpred"
)

// TestObsMuxEndpoints exercises the -listen handlers without a listener: the
// metrics endpoint must speak the Prometheus text format and carry the
// documented series (the instrumented packages register them at init), and
// the health probe must answer structured JSON.
func TestObsMuxEndpoints(t *testing.T) {
	mux := obsMux(time.Now())

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body := rec.Body.String()
	for _, series := range []string{
		"agingpred_predictions_total",
		"agingpred_drift_trips_total",
		"agingpred_current_epoch",
		"agingpred_fleet_tick_latency_seconds_bucket",
		"# TYPE agingpred_fleet_tick_latency_seconds histogram",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz status %d", rec.Code)
	}
	var health struct {
		Status    string  `json:"status"`
		UptimeSec float64 `json:"uptime_sec"`
		Epoch     int     `json:"epoch"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, rec.Body.String())
	}
	if health.Status != "ok" || health.Epoch < 1 {
		t.Fatalf("/healthz says %+v", health)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", rec.Code)
	}
}

// TestStartObsServerBindsAndStops checks the real listener path with an
// ephemeral port.
func TestStartObsServerBindsAndStops(t *testing.T) {
	addr, stop, err := startObsServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("startObsServer: %v", err)
	}
	defer stop()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("unresolved listen address %q", addr)
	}
	// The registry backing the endpoints is the public one.
	if agingpred.Metrics() == nil {
		t.Fatal("nil public registry")
	}
}
