// Command agingpredict trains a software-aging prediction model from one or
// more checkpoint datasets produced by cmd/agingsim (or exported from any
// monitoring system in the same CSV/ARFF schema) and evaluates it on a test
// dataset, reporting the paper's accuracy metrics: MAE, S-MAE, PRE-MAE and
// POST-MAE.
//
// Models persist as versioned artifacts, so training and serving separate
// cleanly: -save writes the trained model, and -load serves a saved artifact
// without retraining (no -train needed).
//
// Typical usage:
//
//	agingsim -ebs 50  -leak-n 30 -o train-50.csv
//	agingsim -ebs 100 -leak-n 30 -o train-100.csv
//	agingsim -ebs 150 -leak-n 30 -o test-150.csv
//	agingpredict -train train-50.csv,train-100.csv -save model.bin -print-model -root-cause
//	agingpredict -load model.bin -test test-150.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"agingpred"
	"agingpred/internal/dataset"
	"agingpred/internal/evalx"
	"agingpred/internal/features"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "agingpredict:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("agingpredict", flag.ContinueOnError)
	var (
		trainFiles = fs.String("train", "", "comma-separated training dataset files (CSV or ARFF, as written by agingsim)")
		loadPath   = fs.String("load", "", "serve a saved model artifact instead of training (mutually exclusive with -train)")
		savePath   = fs.String("save", "", "write the trained model as a versioned artifact to this file")
		testFile   = fs.String("test", "", "test dataset file; omit to only train and print the model")
		modelName  = fs.String("model", "m5p", "model family: m5p, linreg or regtree")
		minLeaf    = fs.Int("min-leaf", 10, "minimum training instances per model-tree leaf")
		interval   = fs.Duration("interval", 15*time.Second, "checkpoint spacing assumed when reconstructing prediction times for dataset rows")
		margin     = fs.Float64("margin", evalx.DefaultSecurityMargin, "S-MAE security margin as a fraction of the true time to failure")
		postWindow = fs.Duration("post-window", evalx.DefaultPostWindow, "POST-MAE window before the crash")
		printModel = fs.Bool("print-model", false, "print the learned model (the full M5P tree with its leaf equations)")
		rootCause  = fs.Bool("root-cause", false, "print root-cause hints extracted from the top of the model tree")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trainFiles == "" && *loadPath == "" {
		return errors.New("missing -train (or -load to serve a saved model)")
	}
	if *trainFiles != "" && *loadPath != "" {
		return errors.New("-train and -load are mutually exclusive: a loaded artifact is already trained")
	}
	if *loadPath != "" && *savePath != "" {
		return errors.New("-save with -load would just copy the artifact; nothing was trained")
	}

	var model *agingpred.Model
	if *loadPath != "" {
		m, err := agingpred.LoadModel(*loadPath)
		if err != nil {
			return err
		}
		model = m
		fmt.Printf("loaded %s: %s\n", *loadPath, model.Report())
	} else {
		train, err := loadDatasets(strings.Split(*trainFiles, ","))
		if err != nil {
			return err
		}
		start := time.Now()
		model, err = agingpred.TrainDataset(agingpred.Config{
			Model:            agingpred.ModelKind(*modelName),
			MinLeafInstances: *minLeaf,
		}, train)
		if err != nil {
			return err
		}
		fmt.Printf("trained: %s in %v\n", model.Report(), time.Since(start).Round(time.Millisecond))
	}

	if *savePath != "" {
		if err := agingpred.SaveModel(*savePath, model); err != nil {
			return err
		}
		fmt.Printf("saved model to %s (format v%d); serve it with -load, no retraining needed\n",
			*savePath, agingpred.ModelFormatVersion)
	}

	if *printModel {
		fmt.Println()
		fmt.Println(model.Description())
	}
	if *rootCause {
		hints, err := model.RootCause(3)
		if err != nil {
			fmt.Fprintf(os.Stderr, "root-cause hints unavailable: %v\n", err)
		} else {
			fmt.Println()
			fmt.Print(agingpred.FormatRootCause(hints))
		}
	}

	if *testFile == "" {
		return nil
	}
	test, err := loadDataset(*testFile)
	if err != nil {
		return err
	}
	rep, err := model.EvaluateDataset(test, *interval, evalx.Options{
		Margin:     *margin,
		PostWindow: *postWindow,
		Model:      string(model.Kind()),
	})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(evalx.Table(fmt.Sprintf("evaluation on %s (%d instances)", *testFile, test.Len()), []evalx.Report{rep}))
	return nil
}

// loadDatasets reads and concatenates several dataset files with identical
// schemas.
func loadDatasets(paths []string) (*dataset.Dataset, error) {
	var merged *dataset.Dataset
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		ds, err := loadDataset(path)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = ds
			merged.Relation = "training"
			continue
		}
		if err := merged.AppendAll(ds); err != nil {
			return nil, fmt.Errorf("merging %s: %w", path, err)
		}
	}
	if merged == nil || merged.Len() == 0 {
		return nil, errors.New("no training instances loaded")
	}
	return merged, nil
}

// loadDataset reads one CSV or ARFF dataset, deciding by file extension.
func loadDataset(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".arff") {
		return dataset.ReadARFF(f)
	}
	ds, err := dataset.ReadCSV(f, path)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	if ds.Target() != features.Target {
		fmt.Fprintf(os.Stderr, "warning: %s uses target column %q (expected %q); proceeding anyway\n",
			path, ds.Target(), features.Target)
	}
	return ds, nil
}
