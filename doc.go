// Package agingpred is a Go reproduction of "Adaptive on-line software aging
// prediction based on Machine Learning" (Alonso, Torres, Berral, Gavaldà —
// IEEE/IFIP DSN 2010).
//
// The repository contains, as internal packages, everything the paper's
// evaluation depends on: an M5P model-tree learner with a linear-regression
// baseline, the Table 2 derived-feature pipeline (sliding-window consumption
// speeds), a discrete-event simulation of the paper's three-tier testbed
// (TPC-W workload, Tomcat-like application server, generational JVM heap,
// aging-fault injection), the accuracy metrics (MAE, S-MAE, PRE/POST-MAE),
// software-rejuvenation policies, and an experiment harness that regenerates
// every table and figure of the paper. The harness is organised as a
// scenario engine (internal/experiments): the paper's four experiments and
// any number of new workloads register as scenarios, and seed sweeps run
// concurrently on a worker pool with cross-seed aggregate statistics — see
// the internal/experiments package comment for how to write and register a
// scenario. See README.md for the layout and EXPERIMENTS.md for the
// paper-vs-measured comparison.
//
// # The feature-schema registry
//
// Feature extraction is schema-driven. internal/features assembles named
// Schemas from ResourceDescriptors (name, unit, direction, SWA window,
// checkpoint accessor); the paper's derived-metric families — SWA
// consumption speed, its inverse, per-throughput normalisations, level over
// speed, smoothed levels — are generated generically from the descriptors,
// so a new monitored resource is one descriptor plus the families it should
// appear in (see the internal/features package comment for a worked
// example). The built-in schemas are the Table 2 variants "full", "no-heap"
// and "heap-focus" — kept byte-identical to the original hardcoded variable
// lists by a regression test — plus "full+conn", which adds the
// database-connection speed derivatives the paper's list lacks. Schemas
// compile to an index-based column program evaluated into a reusable
// buffer, and core.Predictor binds its trained model to row indices once,
// so the steady-state Observe hot path performs zero allocations per
// checkpoint (BenchmarkObserve pins this). Schema selection is plumbed
// end to end: core.Config.Schema, scenario declarations (agingbench -list,
// -schema), fleet.Config.Schema and per-class fleet.Config.ClassSchemas
// (agingfleet -schema / -class-schema), and agingsim -variables.
//
// # The fleet subsystem
//
// Beyond the paper's single-server evaluation, internal/fleet scales the
// predictor into an online prediction service over thousands of
// concurrently-simulated application-server instances: heterogeneous leak
// profiles, workloads and phase offsets drawn deterministically from one
// seed; every instance's 15-second checkpoints streamed through sharded
// predictor workers (consistent instance→shard assignment, bounded queues
// with backpressure); and a fleet-level controller that closes the monitor →
// predict → rejuvenate loop under a concurrency-capped rejuvenation budget.
// The shared M5P model is trained once and fanned out read-only via
// core.Predictor.Clone — Observe itself is not goroutine-safe, clones are
// the concurrency mechanism. Shard count changes wall-clock speed only: the
// same seed yields a byte-identical JSON summary, and changing the shard
// count changes nothing but the echoed shard-count field. The
// "fleet" scenario exposes the per-class prediction accuracy to agingbench
// matrix sweeps, and BenchmarkFleet tracks serving throughput in
// instance-checkpoints/sec at 1, 4 and per-CPU shard counts.
//
// The root package intentionally contains no code: the public entry point is
// internal/core (the Predictor), the runnable entry points are cmd/agingsim,
// cmd/agingpredict, cmd/agingbench (including the scenario-matrix mode,
// e.g. `agingbench -experiment all -parallel 8 -seeds 1..8`, with -json for
// machine-readable aggregates) and cmd/agingfleet (a simulated day over a
// thousand servers: `agingfleet -instances 1000 -shards 8`), and the
// top-level benchmarks in bench_test.go regenerate the paper's results via
// `go test -bench`.
package agingpred
