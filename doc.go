// Package agingpred is a Go reproduction of "Adaptive on-line software aging
// prediction based on Machine Learning" (Alonso, Torres, Berral, Gavaldà —
// IEEE/IFIP DSN 2010).
//
// The repository contains, as internal packages, everything the paper's
// evaluation depends on: an M5P model-tree learner with a linear-regression
// baseline, the Table 2 derived-feature pipeline (sliding-window consumption
// speeds), a discrete-event simulation of the paper's three-tier testbed
// (TPC-W workload, Tomcat-like application server, generational JVM heap,
// aging-fault injection), the accuracy metrics (MAE, S-MAE, PRE/POST-MAE),
// software-rejuvenation policies, and an experiment harness that regenerates
// every table and figure of the paper. The harness is organised as a
// scenario engine (internal/experiments): the paper's four experiments and
// any number of new workloads register as scenarios, and seed sweeps run
// concurrently on a worker pool with cross-seed aggregate statistics — see
// the internal/experiments package comment for how to write and register a
// scenario. See README.md for the layout, DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-vs-measured comparison.
//
// The root package intentionally contains no code: the public entry point is
// internal/core (the Predictor), the runnable entry points are cmd/agingsim,
// cmd/agingpredict and cmd/agingbench (including the scenario-matrix mode,
// e.g. `agingbench -experiment all -parallel 8 -seeds 1..8`), and the
// top-level benchmarks in bench_test.go regenerate the paper's results via
// `go test -bench`.
package agingpred
