// Package agingpred predicts software-aging failures on-line, reproducing
// and extending "Adaptive on-line software aging prediction based on Machine
// Learning" (Alonso, Torres, Berral, Gavaldà — IEEE/IFIP DSN 2010).
//
// # The public API: Model and Session
//
// The paper's workflow is two-phase — train off-line on run-to-crash
// executions, predict on-line per server — and the API mirrors it with two
// types. A Model is the immutable result of training (an M5P model tree by
// default, with linear-regression and regression-tree baselines) bound to
// the feature schema it was trained under; it is safe for concurrent use and
// never mutated. A Session is the cheap per-stream sliding-window state
// created by Model.NewSession: one per monitored server, Observe per
// 15-second checkpoint, Reset after a rejuvenation. Steady-state
// Session.Observe performs zero allocations per checkpoint.
//
//	model, err := agingpred.Train(agingpred.Config{}, trainingSeries)
//	...
//	sess := model.NewSession()           // one per monitored server
//	for cp := range checkpoints {
//	    pred, _ := sess.Observe(cp)
//	    if pred.CrashExpected && pred.TTF < 10*time.Minute {
//	        triggerRejuvenation()
//	        sess.Reset()
//	    }
//	}
//
// # Adaptive serving: Supervisor and Stream
//
// A frozen model degrades permanently when the serving regime drifts from
// its training runs; adaptation is the paper's titular contribution.
// NewSupervisor wraps a Model as epoch 1 of an adaptive loop:
// Supervisor.NewStream creates the adaptive counterpart of a Session, which
// remembers each prediction until the stream's outcome resolves the labels
// (Stream.ResolveCrash scores them against the observed crash time and
// donates the labeled run to a bounded training buffer;
// Stream.ResolveCensored discards them after a rejuvenation). A
// sliding-window-MAE drift detector with a calibrated baseline and a
// trigger/clear hysteresis band decides when the model has gone stale; the
// Supervisor then retrains on a background goroutine via the same Train
// pipeline and publishes the result as a new model epoch through an atomic
// swap. Observe is never locked, and streams adopt the new epoch at their
// next Reset boundary:
//
//	sup, _ := agingpred.NewSupervisor(agingpred.AdaptConfig{Seed: trainingSeries}, model)
//	stream := sup.NewStream("server-42")
//	for cp := range checkpoints {
//	    pred, _ := stream.Observe(cp)       // lock-free; 0 allocs steady-state
//	    ...
//	}
//	stream.ResolveCrash(crashTimeSec)       // label feedback at the crash
//	sup.Adapt()                             // retrain + publish if drifted
//	stream.Reset()                          // adopt the new epoch
//
// See examples/adaptive for the full walkthrough and the "adaptive"
// scenario (agingbench -experiment adaptive) for the measured
// frozen-vs-adaptive comparison; agingfleet -adaptive runs the loop across
// a whole fleet.
//
// # Model persistence
//
// Models persist as versioned artifacts: SaveModel / Model.Encode write
// them, LoadModel / DecodeModel read them back with format-version,
// checksum and schema-compatibility checks, and the loaded model predicts
// bit-identically to the in-memory one. Train once, save the artifact, and
// serve it anywhere (`agingpredict -load model.bin`, `agingfleet -load
// model.bin`) without retraining.
//
// # What backs it
//
// The repository contains, as internal packages, everything the paper's
// evaluation depends on: the M5P learner (internal/m5p) with its baselines,
// the schema-driven Table 2 feature pipeline (internal/features — named
// Schemas compiled from ResourceDescriptors into an allocation-free column
// program; built-ins "full", "no-heap", "heap-focus" and "full+conn"), a
// discrete-event simulation of the paper's three-tier testbed (TPC-W
// workload, Tomcat-like application server, generational JVM heap,
// aging-fault injection), the accuracy metrics (MAE, S-MAE, PRE/POST-MAE),
// software-rejuvenation policies, a scenario engine reproducing every table
// and figure of the paper (internal/experiments), the adaptive-serving
// subsystem behind Supervisor (internal/adapt), and the fleet subsystem
// (internal/fleet) that serves thousands of simulated servers through
// sharded per-instance Sessions of one shared Model. ARCHITECTURE.md maps
// the packages to the paper's sections.
//
// The runnable entry points are cmd/agingsim, cmd/agingpredict,
// cmd/agingbench (scenario-matrix mode: `agingbench -experiment all
// -parallel 8 -seeds 1..8`) and cmd/agingfleet (`agingfleet -instances 1000
// -shards 8`); the examples/ directory holds guided walk-throughs
// (quickstart, saveload, adaptive, rejuvenation, rootcause, webapp-aging,
// fleet), and
// the top-level benchmarks in bench_test.go regenerate the paper's results
// via `go test -bench`. See README.md for the layout and the migration notes
// from the old core.Predictor surface, and EXPERIMENTS.md for the
// paper-vs-measured comparison.
package agingpred
