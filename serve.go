package agingpred

// This file exports the network serving surface backed by internal/serve: a
// prediction service any monitored application server can stream its
// 15-second checkpoints to over a socket — the binary frame protocol on raw
// TCP for the hot path, NDJSON over HTTP for debuggability — plus the
// matching client. Like the rest of the root package these are aliases, not
// wrappers.

import "agingpred/internal/serve"

// The network serving types.
type (
	// ServeConfig describes one prediction server: the model (frozen
	// serving) or Supervisor (adaptive serving), the two transport listen
	// addresses, and the session-table limits (max sessions, max frame
	// size, idle timeout).
	ServeConfig = serve.Config
	// Server is one running prediction service: a session table over both
	// transports, with graceful draining (Drain) and hot model reload
	// (SwapModel) through the epoch machinery live streams adopt at their
	// next RESET.
	Server = serve.Server
	// ServeConn is one client-side prediction stream over either transport,
	// as returned by DialServer / DialServerHTTP.
	ServeConn = serve.Conn
	// ServePrediction is one server answer, carrying the epoch sequence
	// number of the model that produced it.
	ServePrediction = serve.Prediction
	// ServerError is a typed refusal from the server (session table full,
	// draining, schema mismatch, ...).
	ServerError = serve.ServerError
	// ResolveKind says how a stream's outcome resolves its pending labels
	// (ResolveCrash scores them, ResolveCensored discards them).
	ResolveKind = serve.ResolveKind
)

// The stream-outcome vocabulary for ServeConn.Resolve.
const (
	// ResolveCrash reports the monitored server crashed at the given time;
	// an adaptive server scores the stream's pending predictions against it.
	ResolveCrash = serve.ResolveCrash
	// ResolveCensored reports the stream ended without an observed crash
	// (rejuvenation, re-pointing); pending predictions are discarded.
	ResolveCensored = serve.ResolveCensored
)

// Serve starts a prediction server and serves in the background until Drain
// or Close.
func Serve(cfg ServeConfig) (*Server, error) {
	return serve.Start(cfg)
}

// DialServer opens a binary-transport prediction stream to a running server.
// schema "" accepts whatever feature schema the server serves.
func DialServer(addr, schema string) (ServeConn, error) {
	return serve.Dial(addr, schema)
}

// DialServerHTTP opens an NDJSON-over-HTTP prediction stream (one chunked
// POST) to a running server's HTTP listener.
func DialServerHTTP(baseURL, schema string) (ServeConn, error) {
	return serve.DialHTTP(baseURL, schema)
}
