module agingpred

go 1.24
