package agingpred_test

// Compile-checked godoc examples mirroring the README / doc.go quickstart
// snippets. They carry no "Output:" comment, so `go test` compiles them
// without running them — the documented API surface cannot rot: if a
// snippet here stops compiling, the suite fails and the docs must be
// updated with it.

import (
	"fmt"
	"log"
	"time"

	"agingpred"
)

// loadTrainingSeries stands in for wherever monitored run-to-crash
// executions come from in a real deployment (the monitor package, a CSV
// written by agingsim, ...).
func loadTrainingSeries() []*agingpred.Series { return nil }

// liveCheckpoints stands in for a live 15-second monitoring feed.
func liveCheckpoints() []agingpred.Checkpoint { return nil }

func triggerRejuvenation() {}

// Example_quickstart is the README quickstart: train an immutable Model on
// monitored failure executions, fan out a per-stream Session, and act on
// the predicted time to failure every checkpoint.
func Example_quickstart() {
	model, err := agingpred.Train(agingpred.Config{}, loadTrainingSeries())
	if err != nil {
		log.Fatal(err)
	}
	// ... or serve a saved artifact: model, err := agingpred.LoadModel("model.bin")

	sess := model.NewSession() // one per monitored server
	for _, cp := range liveCheckpoints() {
		pred, err := sess.Observe(cp)
		if err != nil {
			log.Fatal(err)
		}
		if pred.CrashExpected && pred.TTF < 10*time.Minute {
			triggerRejuvenation()
			sess.Reset()
		}
	}
}

// ExampleModel_NewSession shows the train-once/serve-everywhere split: one
// immutable Model, one cheap Session per monitored checkpoint stream —
// sessions are the unit of concurrency, and steady-state Observe allocates
// nothing.
func ExampleModel_NewSession() {
	model, err := agingpred.Train(agingpred.Config{Model: agingpred.ModelM5P}, loadTrainingSeries())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(model.Report())

	// One session per server; the shared model is read-only.
	fleet := make([]*agingpred.Session, 8)
	for i := range fleet {
		fleet[i] = model.NewSession()
	}
	for _, cp := range liveCheckpoints() {
		pred, err := fleet[0].Observe(cp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%.0fs predicted TTF %s\n", cp.TimeSec, pred.TTF)
	}
}

// ExampleNewSupervisor is the adaptive-serving quickstart: wrap the model
// in a Supervisor, serve through a Stream, resolve outcomes, and let drift
// detection + background retraining hot-swap model epochs under the live
// stream.
func ExampleNewSupervisor() {
	training := loadTrainingSeries()
	model, err := agingpred.Train(agingpred.Config{}, training)
	if err != nil {
		log.Fatal(err)
	}
	sup, err := agingpred.NewSupervisor(agingpred.AdaptConfig{
		Seed: training, // retrains extend, not forget, the original coverage
	}, model)
	if err != nil {
		log.Fatal(err)
	}

	stream := sup.NewStream("server-42")
	for _, cp := range liveCheckpoints() {
		if _, err := stream.Observe(cp); err != nil {
			log.Fatal(err)
		}
	}
	// The server crashed: resolve the pending prediction labels, adapt if
	// the drift detector tripped, and come back on the current epoch.
	stream.ResolveCrash( /* crashTimeSec = */ 5400)
	if sup.Adapt() {
		fmt.Printf("retrained: now serving epoch %d\n", sup.Current().Seq)
	}
	stream.Reset()
}
