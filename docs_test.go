package agingpred_test

// The docs gate: documentation references to package paths and public API
// symbols are checked against the tree and the parsed root package, so a
// rename or removal fails the suite instead of silently rotting
// ARCHITECTURE.md / README.md / EXPERIMENTS.md. CI runs these explicitly as
// a separate step.

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"agingpred"

	// serve is imported directly so the wire-vocabulary gate can enumerate
	// its frame types and error codes (its metric series register through the
	// root package's own import of it).
	"agingpred/internal/serve"

	// The blank imports pull in every instrumented subsystem so their metric
	// series are registered before the metrics docs gate reads the registry
	// (fleet transitively registers core, adapt and rejuv).
	_ "agingpred/internal/fleet"
)

// docFiles are the documents the gate covers.
var docFiles = []string{"ARCHITECTURE.md", "README.md", "EXPERIMENTS.md", "ROADMAP.md"}

// pkgPathRe matches repository package paths mentioned in the docs
// (internal/adapt, cmd/agingfleet, examples/adaptive, ...).
var pkgPathRe = regexp.MustCompile(`\b(?:internal|examples|cmd)/[a-z0-9_]+`)

// symbolRe matches public-API references like agingpred.Supervisor or
// agingpred.Model (method selectors resolve through the leading type name).
var symbolRe = regexp.MustCompile(`\bagingpred\.([A-Z][A-Za-z0-9_]*)`)

// TestDocsGatePackagePathsExist fails when a document names a package
// directory that does not exist in the tree.
func TestDocsGatePackagePathsExist(t *testing.T) {
	for _, doc := range docFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		seen := map[string]bool{}
		for _, match := range pkgPathRe.FindAllString(string(raw), -1) {
			if seen[match] {
				continue
			}
			seen[match] = true
			info, err := os.Stat(filepath.FromSlash(match))
			if err != nil || !info.IsDir() {
				t.Errorf("%s references package path %q, which is not a directory in this repository", doc, match)
			}
		}
	}
}

// exportedRootSymbols parses the non-test Go files of the root package and
// returns every exported top-level identifier (types, funcs, consts, vars).
func exportedRootSymbols(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parsing the root package: %v", err)
	}
	pkg, ok := pkgs["agingpred"]
	if !ok {
		t.Fatalf("root package agingpred not found (got %v)", pkgs)
	}
	symbols := map[string]bool{}
	for _, file := range pkg.Files {
		for name := range file.Scope.Objects {
			if token.IsExported(name) {
				symbols[name] = true
			}
		}
	}
	if len(symbols) == 0 {
		t.Fatalf("no exported symbols parsed; the gate would be vacuous")
	}
	return symbols
}

// TestDocsGateSymbolsExist fails when a document (or doc.go) references an
// agingpred.X symbol the root package does not export.
func TestDocsGateSymbolsExist(t *testing.T) {
	symbols := exportedRootSymbols(t)
	for _, doc := range append(append([]string{}, docFiles...), "doc.go") {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		seen := map[string]bool{}
		for _, match := range symbolRe.FindAllStringSubmatch(string(raw), -1) {
			name := match[1]
			if seen[name] {
				continue
			}
			seen[name] = true
			if !symbols[name] {
				t.Errorf("%s references agingpred.%s, which the root package does not export", doc, name)
			}
		}
	}
}

// TestDocsGateArchitectureCoversPackages is the inverse direction for the
// package map: every internal package in the tree must be mentioned in
// ARCHITECTURE.md, so the map cannot silently fall behind a new subsystem.
func TestDocsGateArchitectureCoversPackages(t *testing.T) {
	raw, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("reading ARCHITECTURE.md: %v", err)
	}
	arch := string(raw)
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatalf("listing internal/: %v", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !strings.Contains(arch, e.Name()) {
			t.Errorf("ARCHITECTURE.md does not mention internal package %q", e.Name())
		}
	}
}

// TestDocsGateMetricsSeriesDocumented requires README.md to document every
// metric series the instrumented subsystems register and every event type the
// journal can carry: an undocumented series cannot silently appear on the
// /metrics endpoint, and a renamed one cannot leave the docs stale.
func TestDocsGateMetricsSeriesDocumented(t *testing.T) {
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	readme := string(raw)
	names := agingpred.Metrics().Names()
	if len(names) < 10 {
		t.Fatalf("only %d metric series registered; the instrumented packages did not load", len(names))
	}
	for _, name := range names {
		if !strings.Contains(readme, name) {
			t.Errorf("README.md does not document metric series %q", name)
		}
	}
	for _, et := range agingpred.EventTypes() {
		if !strings.Contains(readme, string(et)) {
			t.Errorf("README.md does not document journal event type %q", et)
		}
	}
}

// TestDocsGateWireVocabularyDocumented requires README.md's wire-format
// section to name every frame type and typed error code the protocol speaks
// (backticked, so common words like "idle" cannot satisfy the gate by
// accident): third-party clients are written against that table, and a new
// frame or code must not ship undocumented.
func TestDocsGateWireVocabularyDocumented(t *testing.T) {
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	readme := string(raw)
	for ft := serve.FrameHello; ft <= serve.FrameError; ft++ {
		if !strings.Contains(readme, "`"+ft.String()+"`") {
			t.Errorf("README.md does not document wire frame type `%s`", ft)
		}
	}
	for ec := serve.ErrCodeMalformed; ec <= serve.ErrCodeInternal; ec++ {
		if !strings.Contains(readme, "`"+ec.String()+"`") {
			t.Errorf("README.md does not document wire error code `%s`", ec)
		}
	}
}
